//! The global cycle scheduler.
//!
//! Each session paces its own cycle onto a simulated clock (the per-user
//! timing defense of `toppriv_core::pacing`); the service must then
//! submit the union of all tenants' schedules. [`CycleScheduler`] merges
//! the per-session plans into one time-ordered queue — the service-level
//! counterpart of [`toppriv_core::merge_schedules`], keeping its exact
//! ordering semantics — then **partitions it by shard**: every planned
//! submission carries the shard set its terms route to (tagged by
//! [`crate::SessionManager::plan_cycle`]), and the drain assigns it to
//! the queue of its primary (lowest) shard. Each shard's queue is
//! drained by its own workers with its own cursor, so shards proceed
//! independently: no global claim lock, no head-of-line blocking across
//! shards, and — together with the sharded engine's per-shard query
//! logs — no engine-wide mutex anywhere on the submission hot path.
//!
//! Draining consumes each queue in time order but does not sleep between
//! submissions: simulated time orders the trace the engine sees, while
//! wall-clock throughput is bounded only by the worker pool. Global and
//! per-shard queue depths and per-submit latency are reported to
//! [`ServiceMetrics`]; each drain additionally records per-shard **queue
//! wait** (drain start → claim) and **service time** (resolution) into
//! [`M_QUEUE_WAIT_US`] / [`M_SERVICE_US`] histograms, counts per-shard
//! submissions in [`M_SHARD_SUBMITS`], and journals a `drain` span with
//! one `drain_shard` child per worker into the global tracer.

use crate::cache::ResultCache;
use crate::fault::{FaultKind, FaultPlane};
use crate::metrics::ServiceMetrics;
use crate::session::{RolledBackCycle, SessionManager};
use crate::tier::SearchTier;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use toppriv_core::ScheduledQuery;
use toppriv_obs::{recover_lock, AuditSeverity};
use tsearch_search::SearchHit;

/// Metric name: per-shard queue wait (claim time − drain start, µs).
pub const M_QUEUE_WAIT_US: &str = "scheduler_queue_wait_us";
/// Metric name: per-shard service time (resolution latency, µs).
pub const M_SERVICE_US: &str = "scheduler_service_us";
/// Metric name: per-shard drained submission counter.
pub const M_SHARD_SUBMITS: &str = "scheduler_submits_total";
/// Metric name: per-shard submission retry counter.
pub const M_SHARD_RETRIES: &str = "scheduler_retries_total";

/// Retry, watchdog, and quarantine knobs for a drain.
///
/// The defaults keep pre-fault-plane behaviour intact for healthy
/// queues: retries only trigger after a panic, the 30 s deadline is far
/// beyond any test drain, and quarantine needs repeated same-shard
/// failures in one drain.
#[derive(Debug, Clone)]
pub struct DrainPolicy {
    /// Attempts per submission (first try included) before the failure
    /// is terminal.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt (bounded exponential).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Per-drain deadline: workers stop claiming once it passes, and an
    /// injected stall that outlives it panics into the retry path — a
    /// hung shard can no longer block [`CycleScheduler::try_drain`]
    /// forever. Unclaimed entries come back in
    /// [`DrainError::unresolved`].
    pub deadline: Duration,
    /// Terminal failures on one shard within a single drain at (or
    /// past) which the shard is quarantined for the next drains.
    pub quarantine_threshold: usize,
    /// How many subsequent drains a quarantined shard sits out before
    /// its re-admission probe (the first drain at or past the expiry
    /// epoch readmits the shard; failing again re-quarantines it).
    pub quarantine_drains: u64,
}

impl Default for DrainPolicy {
    fn default() -> Self {
        DrainPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
            quarantine_threshold: 3,
            quarantine_drains: 2,
        }
    }
}

/// One subscribing tenant of a (possibly shared) planned submission.
///
/// The cross-session planner coalesces identical submissions from
/// several tenants into one queue entry; each subscriber keeps its own
/// ground-truth cycle id and genuine flag, so the drain can fan the
/// single resolution out into per-tenant outcomes and audit facts.
/// Tags exist only inside the trusted service boundary — the engine
/// sees one untagged submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionTag {
    /// Subscribing session id.
    pub session: String,
    /// That session's ground-truth cycle id (evaluation/audit only).
    pub cycle_id: usize,
    /// Whether the submission is this subscriber's genuine query.
    pub is_genuine: bool,
}

/// One scheduled submission, tagged with its tenant and shard set.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Owning session id.
    pub session: String,
    /// The paced submission (simulated time, tokens, ground truth).
    pub scheduled: ScheduledQuery,
    /// Results to fetch.
    pub k: usize,
    /// Sorted shard set the submission's terms route to (`[0]` on a
    /// single-engine tier). The scheduler queues the submission on its
    /// primary — lowest — shard.
    pub shards: Vec<usize>,
    /// All subscribing tenants when the planner coalesced this entry
    /// (owner included). Empty for the common unshared case — the owner
    /// fields above are the single implicit subscriber.
    pub subscribers: Vec<SubmissionTag>,
}

impl PlannedQuery {
    /// The shard whose queue carries this submission.
    pub fn primary_shard(&self) -> usize {
        self.shards.first().copied().unwrap_or(0)
    }

    /// The subscriber list this entry resolves for: the explicit
    /// `subscribers` when the planner shared it, else the implicit
    /// owner-only tag.
    pub fn subscriber_tags(&self) -> Vec<SubmissionTag> {
        if self.subscribers.is_empty() {
            vec![SubmissionTag {
                session: self.session.clone(),
                cycle_id: self.scheduled.cycle_id,
                is_genuine: self.scheduled.is_genuine,
            }]
        } else {
            self.subscribers.clone()
        }
    }

    /// How many per-tenant outcomes this entry fans out into.
    pub fn fanout(&self) -> usize {
        self.subscribers.len().max(1)
    }
}

/// Outcome of one drained submission.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Owning session id.
    pub session: String,
    /// Ground-truth cycle id within the session (evaluation only).
    pub cycle_id: usize,
    /// Simulated submission time.
    pub time_secs: f64,
    /// Whether this was the genuine query (evaluation only).
    pub is_genuine: bool,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// The genuine query's hits; ghost results are discarded at the
    /// trusted boundary and never materialize here.
    pub hits: Vec<SearchHit>,
}

/// One worker failure surfaced by [`CycleScheduler::try_drain`] —
/// terminal, i.e. the submission exhausted its retry budget.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard whose worker panicked.
    pub shard: usize,
    /// Session owning the submission that triggered the panic.
    pub session: String,
    /// The owning session's cycle id (what a rollback reverses).
    pub cycle_id: usize,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

/// A drain that lost submissions to worker panics. The submissions that
/// did complete are preserved in `completed` (sorted like a successful
/// drain), so callers can still account for the partial trace; the
/// submissions that did **not** come back as plans the caller can retry
/// or roll back (see [`CycleScheduler::drain_resilient`]) — nothing is
/// silently dropped.
#[derive(Debug)]
pub struct DrainError {
    /// Per-submission terminal failures, in claim order per shard.
    pub failures: Vec<ShardFailure>,
    /// The failed entries themselves (aligned with no particular order;
    /// each produced exactly one entry in `failures`). Re-draining them
    /// verbatim replays the same deterministic fault decisions — these
    /// are rollback candidates, not retry candidates.
    pub failed: Vec<PlannedQuery>,
    /// Entries never attempted: skipped because their primary shard is
    /// quarantined, or unclaimed when the drain deadline cut the drain
    /// short. Safe to re-queue into a later drain verbatim.
    pub unresolved: Vec<PlannedQuery>,
    /// Outcomes of the submissions that completed.
    pub completed: Vec<SubmitOutcome>,
    /// Per-tenant outcomes the drain was asked to produce — the sum of
    /// every queue entry's subscriber fan-out (equal to the queue length
    /// when nothing was coalesced).
    pub expected: usize,
}

impl std::fmt::Display for DrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "drain lost {} of {} submissions to worker panics",
            self.failures.len(),
            self.expected
        )?;
        if !self.unresolved.is_empty() {
            write!(
                f,
                " ({} unresolved entries re-queued)",
                self.unresolved.len()
            )?;
        }
        if let Some(first) = self.failures.first() {
            write!(
                f,
                " (first: shard {} session '{}': {})",
                first.shard, first.session, first.message
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for DrainError {}

/// What [`CycleScheduler::drain_resilient`] produces: the delivered
/// outcomes plus a full ledger of everything the self-healing path did.
#[derive(Debug)]
pub struct ResilientReport {
    /// Outcomes of every *fully delivered* cycle, sorted by simulated
    /// time like a plain drain.
    pub outcomes: Vec<SubmitOutcome>,
    /// Outcomes that resolved against the engine but belong to cycles
    /// later rolled back — discarded from `outcomes` (cycle atomicity)
    /// but kept here so engine-side accounting identities (`merged +
    /// cache_hits == drained`) remain checkable.
    pub discarded: Vec<SubmitOutcome>,
    /// Every cycle whose trace debits were reversed.
    pub rolled_back: Vec<RolledBackCycle>,
    /// `(session, old cycle id, new cycle id)` for every rolled-back
    /// cycle that was replanned as a fresh cycle.
    pub replanned: Vec<(String, usize, usize)>,
    /// Drain rounds it took (1 for a fault-free queue).
    pub rounds: usize,
}

/// Fault-injection predicate: a submission it returns `true` for makes
/// its worker panic (test/chaos harness hook, see
/// [`CycleScheduler::with_worker_fault`]).
pub type WorkerFault = Arc<dyn Fn(&PlannedQuery) -> bool + Send + Sync>;

/// Merges per-session plans and drains them on per-shard worker queues.
pub struct CycleScheduler {
    tier: SearchTier,
    cache: Option<Arc<ResultCache>>,
    metrics: Arc<ServiceMetrics>,
    workers: usize,
    /// Chaos hook: submissions this predicate selects panic their
    /// worker mid-resolve, exercising the failure-surfacing path.
    worker_fault: Option<WorkerFault>,
    /// The deterministic fault plane, when attached: worker panics and
    /// shard stalls are drawn from its seeded schedule per (submission,
    /// attempt), so retries flip fresh coins and rate faults heal.
    fault: Option<Arc<FaultPlane>>,
    /// Retry / watchdog / quarantine knobs.
    policy: DrainPolicy,
    /// Quarantined shards: shard → first drain epoch that readmits it.
    /// Quarantine spans *across* drains, never within one — a shard's
    /// failures in one drain surface in that drain's [`DrainError`] and
    /// only then gate the next drains.
    quarantine: Mutex<HashMap<usize, u64>>,
    /// Monotone drain counter (the quarantine epoch clock).
    drain_epoch: AtomicU64,
    /// The privacy auditor, when the audit plane is attached: every
    /// drained submission is audited via
    /// [`crate::PrivacyAuditor::on_outcome`].
    auditor: Option<Arc<crate::auditor::PrivacyAuditor>>,
}

impl CycleScheduler {
    /// A scheduler over explicit parts. `workers` is the total pool size,
    /// spread across the tier's shards at drain time (each active shard
    /// always gets at least one worker).
    pub fn new(
        tier: SearchTier,
        cache: Option<Arc<ResultCache>>,
        metrics: Arc<ServiceMetrics>,
        workers: usize,
    ) -> Self {
        CycleScheduler {
            tier,
            cache,
            metrics,
            workers: workers.max(1),
            worker_fault: None,
            fault: None,
            policy: DrainPolicy::default(),
            quarantine: Mutex::new(HashMap::new()),
            drain_epoch: AtomicU64::new(0),
            auditor: None,
        }
    }

    /// Attaches a deterministic [`FaultPlane`]: its `WorkerPanic` and
    /// `ShardStall` specs drive this scheduler's workers.
    /// [`CycleScheduler::for_manager`] inherits the manager's plane
    /// automatically.
    pub fn with_fault_plane(mut self, plane: Arc<FaultPlane>) -> Self {
        self.fault = Some(plane);
        self
    }

    /// Overrides the default [`DrainPolicy`].
    pub fn with_policy(mut self, policy: DrainPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The scheduler's drain policy.
    pub fn policy(&self) -> &DrainPolicy {
        &self.policy
    }

    /// Currently quarantined shards (sorted), with the drain epoch that
    /// readmits each.
    pub fn quarantined_shards(&self) -> Vec<(usize, u64)> {
        let mut out: Vec<(usize, u64)> = recover_lock(&self.quarantine)
            .iter()
            .map(|(&s, &e)| (s, e))
            .collect();
        out.sort_unstable();
        out
    }

    /// Attaches a privacy auditor: drain workers audit every drained
    /// submission against its registered cycle facts, and each drain
    /// ends with the auditor's epilogue (fact pruning, periodic journal
    /// spill). [`CycleScheduler::for_manager`] inherits the manager's
    /// auditor automatically.
    pub fn with_auditor(mut self, auditor: Arc<crate::auditor::PrivacyAuditor>) -> Self {
        self.auditor = Some(auditor);
        self
    }

    /// Installs a fault-injection predicate: any submission it selects
    /// makes its worker panic mid-resolve. This is the chaos-testing
    /// hook the scenario harness and the drain-failure tests use to
    /// prove panics surface as [`DrainError`]s instead of silently
    /// dropping a shard's outcomes.
    pub fn with_worker_fault(mut self, fault: WorkerFault) -> Self {
        self.worker_fault = Some(fault);
        self
    }

    /// A scheduler sharing a [`SessionManager`]'s search tier, cache,
    /// metrics registry, auditor, and fault plane.
    pub fn for_manager(manager: &SessionManager, workers: usize) -> Self {
        let mut scheduler = Self::new(
            manager.tier(),
            manager.cache().cloned(),
            manager.metrics_registry().clone(),
            workers,
        );
        if let Some(auditor) = manager.auditor() {
            scheduler = scheduler.with_auditor(auditor.clone());
        }
        if let Some(plane) = manager.fault_plane() {
            scheduler = scheduler.with_fault_plane(plane.clone());
        }
        scheduler
    }

    /// Merges per-session plans into one globally time-ordered queue —
    /// the same stable ascending-time order as
    /// [`toppriv_core::merge_schedules`].
    pub fn merge(plans: Vec<Vec<PlannedQuery>>) -> Vec<PlannedQuery> {
        let mut all: Vec<PlannedQuery> = plans.into_iter().flatten().collect();
        all.sort_by(|a, b| {
            a.scheduled
                .time_secs
                .partial_cmp(&b.scheduled.time_secs)
                .expect("finite time")
        });
        all
    }

    /// Drains a merged queue. The queue is split into per-shard queues by
    /// primary shard (each inherits the global time order); every shard's
    /// workers claim from their own cursor and resolve through the shared
    /// cache/tier, so shards drain independently. Returns outcomes sorted
    /// by simulated time (ties broken by merged-queue position).
    ///
    /// A worker panic aborts the whole drain **loudly**: this wrapper
    /// panics with the shard/session of the first failure. Scenario
    /// harnesses that need to keep running use
    /// [`CycleScheduler::try_drain`], which returns the failure as a
    /// structured [`DrainError`] instead. (Before this existed, a panic
    /// in a shard's worker silently dropped that shard's collected
    /// outcomes while `std::thread::scope` re-raised on join — the
    /// partial trace was lost and the failure site was anonymous.)
    pub fn drain(&self, queue: Vec<PlannedQuery>) -> Vec<SubmitOutcome> {
        match self.try_drain(queue) {
            Ok(outcomes) => outcomes,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`CycleScheduler::drain`] with structured failure reporting:
    /// worker panics are caught per submission and retried with bounded
    /// exponential backoff (each attempt flips a fresh deterministic
    /// fault coin, so transient rate faults heal), the rest of the queue
    /// keeps draining under the per-drain deadline watchdog, and the
    /// error carries every terminal failure (shard, session, panic
    /// message) plus the outcomes that did complete and the entries that
    /// were never attempted.
    pub fn try_drain(&self, queue: Vec<PlannedQuery>) -> Result<Vec<SubmitOutcome>, DrainError> {
        let total = queue.len();
        // Shared (planner-coalesced) entries resolve once but produce one
        // outcome per subscribing tenant; a drain succeeds when every
        // expected per-tenant outcome materialized.
        let expected: usize = queue.iter().map(|p| p.fanout()).sum();
        self.metrics.set_queue_depth(total);
        let num_shards = self.tier.num_shards();
        let drain_span = toppriv_obs::tracer().span("drain");
        let epoch = self.drain_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        // Quarantine gate: expired entries are readmitted *before* the
        // partition (their first drain back is the re-admission probe);
        // still-quarantined shards have their entries skipped into the
        // unresolved remainder instead of queued.
        let quarantined: HashSet<usize> = {
            let mut map = recover_lock(&self.quarantine);
            map.retain(|_, &mut until| epoch < until);
            map.keys().copied().collect()
        };
        // Partition by primary shard; each per-shard queue stays in the
        // merged (time) order.
        let mut shard_queues: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        let mut skipped_idx: Vec<usize> = Vec::new();
        for (i, plan) in queue.iter().enumerate() {
            let shard = plan.primary_shard().min(num_shards - 1);
            if quarantined.contains(&shard) {
                skipped_idx.push(i);
            } else {
                shard_queues[shard].push(i);
            }
        }
        // Per-shard handles, fetched once up front: depth gauges, wait /
        // service histograms, and submit counters. Workers then publish
        // with plain atomic ops — nothing on the drain hot path locks.
        let registry = self.metrics.registry();
        let depth_gauges = self.metrics.shard_depth_gauges(num_shards);
        let wait_hists: Vec<_> = (0..num_shards)
            .map(|s| registry.histogram(M_QUEUE_WAIT_US, &[("shard", &s.to_string())]))
            .collect();
        let service_hists: Vec<_> = (0..num_shards)
            .map(|s| registry.histogram(M_SERVICE_US, &[("shard", &s.to_string())]))
            .collect();
        let submit_counters: Vec<_> = (0..num_shards)
            .map(|s| registry.counter(M_SHARD_SUBMITS, &[("shard", &s.to_string())]))
            .collect();
        let retry_counters: Vec<_> = (0..num_shards)
            .map(|s| registry.counter(M_SHARD_RETRIES, &[("shard", &s.to_string())]))
            .collect();
        for (s, gauge) in depth_gauges.iter().enumerate() {
            gauge.set(shard_queues[s].len() as i64);
        }
        let active: Vec<usize> = (0..num_shards)
            .filter(|&s| !shard_queues[s].is_empty())
            .collect();
        // Spread the pool over the active shards: every active shard
        // gets at least one worker, and the remainder (workers not
        // evenly divisible) goes one-per-shard to the first shards so
        // the whole configured pool is used.
        let base = self.workers / active.len().max(1);
        let extra = self.workers % active.len().max(1);
        let remaining = AtomicUsize::new(total);
        let cursors: Vec<AtomicUsize> = (0..num_shards).map(|_| AtomicUsize::new(0)).collect();
        let collectors: Vec<Mutex<Vec<(usize, SubmitOutcome)>>> = (0..num_shards)
            .map(|s| Mutex::new(Vec::with_capacity(shard_queues[s].len())))
            .collect();
        let failures: Mutex<Vec<ShardFailure>> = Mutex::new(Vec::new());
        let failed_idx: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let deadline = self.policy.deadline;
        let queue = &queue;
        let drain_start = Instant::now();
        std::thread::scope(|scope| {
            for (rank, &s) in active.iter().enumerate() {
                let per_shard = (base + usize::from(rank < extra)).max(1);
                for _ in 0..per_shard.min(shard_queues[s].len()) {
                    let shard_queue = &shard_queues[s];
                    let cursor = &cursors[s];
                    let collector = &collectors[s];
                    let failures = &failures;
                    let failed_idx = &failed_idx;
                    let remaining = &remaining;
                    let depth_gauge = &depth_gauges[s];
                    let wait_hist = &wait_hists[s];
                    let service_hist = &service_hists[s];
                    let submit_counter = &submit_counters[s];
                    let retry_counter = &retry_counters[s];
                    let drain_span = &drain_span;
                    scope.spawn(move || {
                        let shard_span = drain_span.child("drain_shard");
                        loop {
                            // Cooperative deadline watchdog: a worker
                            // past the drain deadline stops claiming —
                            // the unclaimed remainder comes back as
                            // `unresolved` instead of blocking forever.
                            if drain_start.elapsed() > deadline {
                                break;
                            }
                            let at = cursor.fetch_add(1, Ordering::Relaxed);
                            if at >= shard_queue.len() {
                                break;
                            }
                            wait_hist.record(drain_start.elapsed().as_micros() as u64);
                            let i = shard_queue[at];
                            let plan = &queue[i];
                            let tags = plan.subscriber_tags();
                            let t0 = Instant::now();
                            // Resolution runs under catch_unwind so one
                            // poisoned submission cannot anonymously take
                            // the whole shard's collected outcomes with
                            // it: a panic is retried with bounded
                            // exponential backoff (a fresh fault coin per
                            // attempt), recorded once per submission when
                            // terminal, and the worker moves on.
                            let mut attempt = 0u32;
                            let resolved = loop {
                                let once =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        if let Some(fault) = &self.worker_fault {
                                            assert!(
                                                !fault(plan),
                                                "injected worker fault (session '{}')",
                                                plan.session
                                            );
                                        }
                                        if let Some(plane) = &self.fault {
                                            if let Some(stall) = plane.stall_for(s, plan, attempt) {
                                                // An injected stall sleeps in
                                                // small slices so the deadline
                                                // can preempt it: a stall that
                                                // outlives the drain deadline
                                                // panics into the failure path
                                                // instead of hanging the shard.
                                                let mut left = stall;
                                                while !left.is_zero() {
                                                    let slice = left.min(Duration::from_millis(1));
                                                    std::thread::sleep(slice);
                                                    left -= slice;
                                                    assert!(
                                                        drain_start.elapsed() <= deadline,
                                                        "injected shard stall exceeded the \
                                                         drain deadline (session '{}')",
                                                        plan.session
                                                    );
                                                }
                                            }
                                            assert!(
                                                !plane.fires_submission(
                                                    FaultKind::WorkerPanic,
                                                    s,
                                                    plan,
                                                    attempt
                                                ),
                                                "injected worker_panic fault (session '{}')",
                                                plan.session
                                            );
                                        }
                                        SessionManager::resolve_shared(
                                            &self.tier,
                                            self.cache.as_deref(),
                                            &self.metrics,
                                            &plan.scheduled.tokens,
                                            plan.k,
                                            &tags,
                                        )
                                    }));
                                match once {
                                    Ok(r) => break Ok(r),
                                    Err(payload) => {
                                        attempt += 1;
                                        if attempt >= self.policy.max_attempts
                                            || drain_start.elapsed() > deadline
                                        {
                                            break Err(payload);
                                        }
                                        retry_counter.inc();
                                        let backoff = self
                                            .policy
                                            .backoff_base
                                            .saturating_mul(1u32 << (attempt - 1).min(16))
                                            .min(self.policy.backoff_cap);
                                        std::thread::sleep(backoff);
                                    }
                                }
                            };
                            // Depth accounting covers failed submissions
                            // too — they left the queue either way.
                            depth_gauge.add(-1);
                            let left = remaining.fetch_sub(1, Ordering::Relaxed) - 1;
                            self.metrics.set_queue_depth(left);
                            let (hits, cache_hit) = match resolved {
                                Ok(r) => r,
                                Err(payload) => {
                                    let message = payload
                                        .downcast_ref::<&str>()
                                        .map(|s| s.to_string())
                                        .or_else(|| payload.downcast_ref::<String>().cloned())
                                        .unwrap_or_else(|| "non-string panic payload".into());
                                    recover_lock(failures).push(ShardFailure {
                                        shard: s,
                                        session: plan.session.clone(),
                                        cycle_id: plan.scheduled.cycle_id,
                                        attempts: attempt,
                                        message,
                                    });
                                    recover_lock(failed_idx).push(i);
                                    continue;
                                }
                            };
                            // The service-time histogram keeps this
                            // worker's span id as the bucket's trace
                            // exemplar, so a p99 outlier links straight
                            // to its `drain_shard` span.
                            service_hist.record_with_exemplar(
                                t0.elapsed().as_micros() as u64,
                                shard_span.id(),
                            );
                            submit_counter.inc();
                            // One resolution fans out into one outcome —
                            // and one audit fact — per subscribing tenant.
                            // Subscribers beyond the first were served
                            // from the shared resolution, which is a
                            // cache hit from their point of view.
                            for (j, tag) in tags.iter().enumerate() {
                                if let Some(auditor) = &self.auditor {
                                    auditor.on_outcome(&tag.session, tag.cycle_id);
                                }
                                let outcome = SubmitOutcome {
                                    session: tag.session.clone(),
                                    cycle_id: tag.cycle_id,
                                    time_secs: plan.scheduled.time_secs,
                                    is_genuine: tag.is_genuine,
                                    cache_hit: cache_hit || j > 0,
                                    // Ghost results are discarded inside the
                                    // trusted boundary; only genuine hits leave
                                    // the scheduler.
                                    hits: if tag.is_genuine {
                                        hits.clone()
                                    } else {
                                        Vec::new()
                                    },
                                };
                                recover_lock(collector).push((i, outcome));
                            }
                        }
                    });
                }
            }
        });
        self.metrics.set_queue_depth(0);
        for gauge in &depth_gauges {
            gauge.set(0);
        }
        if let Some(auditor) = &self.auditor {
            auditor.finish_drain();
        }
        let mut outcomes: Vec<(usize, SubmitOutcome)> = collectors
            .into_iter()
            .flat_map(|c| recover_lock(&c).drain(..).collect::<Vec<_>>())
            .collect();
        outcomes.sort_by_key(|&(i, _)| i);
        let completed: Vec<SubmitOutcome> = outcomes.into_iter().map(|(_, o)| o).collect();
        let failures = failures.into_inner().unwrap_or_else(|p| p.into_inner());
        // Entries past a shard cursor's final position were never
        // claimed (the deadline watchdog cut the drain short): together
        // with the quarantine-skipped entries they form the unresolved
        // remainder handed back for a later drain.
        let mut unresolved_idx: HashSet<usize> = skipped_idx.iter().copied().collect();
        for (s, shard_queue) in shard_queues.iter().enumerate() {
            let claimed = cursors[s].load(Ordering::Relaxed).min(shard_queue.len());
            unresolved_idx.extend(shard_queue[claimed..].iter().copied());
        }
        let failed_idx: HashSet<usize> = failed_idx
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .into_iter()
            .collect();
        let mut failed = Vec::with_capacity(failed_idx.len());
        let mut unresolved = Vec::with_capacity(unresolved_idx.len());
        for (i, plan) in queue.iter().enumerate() {
            if failed_idx.contains(&i) {
                failed.push(plan.clone());
            } else if unresolved_idx.contains(&i) {
                unresolved.push(plan.clone());
            }
        }
        // Quarantine bookkeeping happens strictly *after* the drain so a
        // shard's failures never change this drain's own outcome — they
        // gate the next drains (and are probed back in epoch-style).
        let mut shard_fail_counts: HashMap<usize, usize> = HashMap::new();
        for f in &failures {
            *shard_fail_counts.entry(f.shard).or_insert(0) += 1;
        }
        for (&shard, &count) in &shard_fail_counts {
            if count >= self.policy.quarantine_threshold {
                let until = epoch + self.policy.quarantine_drains;
                recover_lock(&self.quarantine).insert(shard, until);
                if let Some(auditor) = &self.auditor {
                    auditor.note(
                        AuditSeverity::Warning,
                        "shard_quarantined",
                        "fleet",
                        shard,
                        format!(
                            "shard {shard} quarantined after {count} terminal failures in \
                             drain {epoch}; re-admission probe at drain {until}"
                        ),
                    );
                }
            }
        }
        if !unresolved.is_empty() {
            if let Some(auditor) = &self.auditor {
                auditor.note(
                    AuditSeverity::Warning,
                    "degraded_drain",
                    "fleet",
                    epoch as usize,
                    format!(
                        "drain {epoch} degraded: {} entries unresolved ({} quarantine-skipped), \
                         surviving shards kept serving",
                        unresolved.len(),
                        skipped_idx.len()
                    ),
                );
            }
        }
        if failures.is_empty() && unresolved.is_empty() && completed.len() == expected {
            Ok(completed)
        } else {
            Err(DrainError {
                failures,
                failed,
                unresolved,
                completed,
                expected,
            })
        }
    }

    /// Convenience: merge then drain.
    pub fn run(&self, plans: Vec<Vec<PlannedQuery>>) -> Vec<SubmitOutcome> {
        self.drain(Self::merge(plans))
    }

    /// Convenience: merge then [`CycleScheduler::try_drain`].
    pub fn try_run(&self, plans: Vec<Vec<PlannedQuery>>) -> Result<Vec<SubmitOutcome>, DrainError> {
        self.try_drain(Self::merge(plans))
    }

    /// Self-healing drain: [`CycleScheduler::try_drain`] in rounds, with
    /// **cycle-atomic degradation**. Unresolved entries (quarantined
    /// shards, deadline cuts) are re-queued into the next round; cycles
    /// with a terminally failed submission are rolled back through
    /// `manager` — trace debits reversed bit-exactly, pending audit
    /// facts released, their already-resolved outcomes discarded (kept
    /// in [`ResilientReport::discarded`] for engine-side accounting) —
    /// and replanned once as fresh cycles. A replanned cycle that fails
    /// again is rolled back for good. Fully delivered cycles are
    /// confirmed, sealing their accounting against rollback.
    ///
    /// `manager` must be the manager the queue was planned on (cycle
    /// ids are resolved against its sessions).
    pub fn drain_resilient(
        &self,
        manager: &SessionManager,
        queue: Vec<PlannedQuery>,
    ) -> ResilientReport {
        /// Round cap: with one replan per cycle and monotone quarantine
        /// expiry this converges long before, but a bound keeps a
        /// pathological fault schedule from looping the drain forever.
        const MAX_ROUNDS: usize = 6;
        let mut outcomes: Vec<SubmitOutcome> = Vec::new();
        let mut rolled_back: Vec<RolledBackCycle> = Vec::new();
        let mut replanned: Vec<(String, usize, usize)> = Vec::new();
        let mut victims: HashSet<(String, usize)> = HashSet::new();
        // Cycles that already got their one replan: a second failure is
        // terminal.
        let mut no_replan: HashSet<(String, usize)> = HashSet::new();
        let mut pending = queue;
        let mut rounds = 0usize;
        while !pending.is_empty() && rounds < MAX_ROUNDS {
            rounds += 1;
            let err = match self.try_drain(std::mem::take(&mut pending)) {
                Ok(mut done) => {
                    outcomes.append(&mut done);
                    break;
                }
                Err(err) => err,
            };
            outcomes.extend(err.completed);
            let mut round_victims: HashSet<(String, usize)> = HashSet::new();
            for plan in &err.failed {
                for tag in plan.subscriber_tags() {
                    round_victims.insert((tag.session, tag.cycle_id));
                }
            }
            // Release victim fan-out tags from the unresolved remainder:
            // an entry subscribed only by rolled-back cycles is dropped
            // outright, a shared entry keeps serving its survivors.
            let mut next: Vec<PlannedQuery> = Vec::with_capacity(err.unresolved.len());
            for mut plan in err.unresolved {
                if plan.subscribers.is_empty() {
                    let key = (plan.session.clone(), plan.scheduled.cycle_id);
                    if round_victims.contains(&key) {
                        continue;
                    }
                } else {
                    plan.subscribers
                        .retain(|t| !round_victims.contains(&(t.session.clone(), t.cycle_id)));
                    if plan.subscribers.is_empty() {
                        continue;
                    }
                }
                next.push(plan);
            }
            for (session, cycle_id) in round_victims {
                if !victims.insert((session.clone(), cycle_id)) {
                    continue;
                }
                let Ok(rb) = manager.rollback_cycle(&session, cycle_id) else {
                    // Already confirmed or unknown (e.g. rolled back via
                    // another scheduler): nothing to reverse.
                    continue;
                };
                if !no_replan.contains(&(session.clone(), cycle_id)) {
                    if let Ok(plan) = manager.plan_cycle(&session, &rb.user_tokens, rb.k) {
                        if let Some(new_id) = plan.first().map(|p| p.scheduled.cycle_id) {
                            no_replan.insert((session.clone(), new_id));
                            replanned.push((session.clone(), cycle_id, new_id));
                        }
                        next.extend(plan);
                    }
                }
                rolled_back.push(rb);
            }
            pending = next;
        }
        // Rounds exhausted with work still pending: those cycles cannot
        // be delivered this drain — roll them back rather than leave
        // them half-debited.
        for plan in pending {
            for (session, cycle_id) in plan
                .subscriber_tags()
                .into_iter()
                .map(|t| (t.session, t.cycle_id))
            {
                if victims.insert((session.clone(), cycle_id)) {
                    if let Ok(rb) = manager.rollback_cycle(&session, cycle_id) {
                        rolled_back.push(rb);
                    }
                }
            }
        }
        // Cycle atomicity: outcomes of rolled-back cycles never leave
        // the scheduler as delivered work.
        let (delivered, discarded): (Vec<_>, Vec<_>) = outcomes
            .into_iter()
            .partition(|o| !victims.contains(&(o.session.clone(), o.cycle_id)));
        let mut outcomes = delivered;
        outcomes.sort_by(|a, b| a.time_secs.partial_cmp(&b.time_secs).expect("finite time"));
        // Everything delivered is fully delivered: confirm it, sealing
        // the accounting against any later rollback attempt.
        let confirmed: HashSet<(String, usize)> = outcomes
            .iter()
            .map(|o| (o.session.clone(), o.cycle_id))
            .collect();
        for (session, cycle_id) in &confirmed {
            let _ = manager.confirm_cycle(session, *cycle_id);
        }
        ResilientReport {
            outcomes,
            discarded,
            rolled_back,
            replanned,
            rounds: rounds.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_core::merge_schedules;

    fn plan(session: &str, times: &[f64]) -> Vec<PlannedQuery> {
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| PlannedQuery {
                session: session.to_string(),
                scheduled: ScheduledQuery {
                    time_secs: t,
                    tokens: vec![i as u32],
                    is_genuine: i == 0,
                    cycle_id: 0,
                },
                k: 10,
                shards: vec![0],
                subscribers: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn subscriber_tags_default_to_the_owner() {
        let p = plan("a", &[0.0]).remove(0);
        assert_eq!(p.fanout(), 1);
        let tags = p.subscriber_tags();
        assert_eq!(
            tags,
            vec![SubmissionTag {
                session: "a".into(),
                cycle_id: 0,
                is_genuine: true,
            }]
        );
    }

    #[test]
    fn explicit_subscribers_fan_out() {
        let mut p = plan("a", &[0.0]).remove(0);
        p.subscribers = vec![
            SubmissionTag {
                session: "a".into(),
                cycle_id: 0,
                is_genuine: true,
            },
            SubmissionTag {
                session: "b".into(),
                cycle_id: 3,
                is_genuine: false,
            },
        ];
        assert_eq!(p.fanout(), 2);
        assert_eq!(p.subscriber_tags().len(), 2);
        assert_eq!(p.subscriber_tags()[1].session, "b");
    }

    #[test]
    fn merge_is_globally_time_ordered() {
        let merged = CycleScheduler::merge(vec![
            plan("a", &[3.0, 1.0, 2.0]),
            plan("b", &[0.5, 2.5]),
            plan("c", &[]),
        ]);
        assert_eq!(merged.len(), 5);
        assert!(merged
            .windows(2)
            .all(|w| w[0].scheduled.time_secs <= w[1].scheduled.time_secs));
        assert_eq!(merged[0].session, "b");
    }

    #[test]
    fn merge_matches_core_merge_schedules() {
        // The service-level merge must order submissions exactly like the
        // core's merge_schedules on the projected schedule (stable sort by
        // time, ties keeping input order).
        let plans = vec![plan("a", &[2.0, 1.0, 1.0]), plan("b", &[1.0, 3.0])];
        let flat: Vec<ScheduledQuery> = plans
            .iter()
            .flatten()
            .map(|p| p.scheduled.clone())
            .collect();
        let expected = merge_schedules(flat);
        let merged = CycleScheduler::merge(plans);
        assert_eq!(merged.len(), expected.len());
        for (m, e) in merged.iter().zip(&expected) {
            assert_eq!(m.scheduled.time_secs, e.time_secs);
            assert_eq!(m.scheduled.tokens, e.tokens);
        }
    }

    #[test]
    fn primary_shard_is_the_lowest() {
        let mut p = plan("a", &[0.0]).remove(0);
        p.shards = vec![2, 5];
        assert_eq!(p.primary_shard(), 2);
        p.shards.clear();
        assert_eq!(p.primary_shard(), 0);
    }
}
