//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented without `syn`/`quote` (neither is available offline): the
//! input `TokenStream` is walked directly to extract the item shape
//! (struct with named/tuple/unit fields, or enum whose variants are unit,
//! named, or tuple), and the generated impl is assembled as a string and
//! re-parsed. Generics are not supported — no serialized type in this
//! workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (tree-model stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (tree-model stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for item kind `{other}`"),
    }
}

/// Advances past `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances past one type, stopping after the `,` that ends it (or at the
/// end of the stream). Tracks `<...>` nesting; bracketed/parenthesized
/// type parts arrive as single groups so only angles need counting.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1; // field name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn map_expr(entries: &str) -> String {
    if entries.is_empty() {
        "::serde::Value::Map(::std::vec::Vec::new())".to_string()
    } else {
        format!("::serde::Value::Map(::std::vec::Vec::from([{entries}]))")
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    map_expr(&entries.join(", "))
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    if *n == 1 {
                        items.into_iter().next().unwrap()
                    } else {
                        format!(
                            "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                            items.join(", ")
                        )
                    }
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(\
                         ::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        let inner = map_expr(&entries.join(", "));
                        format!(
                            "{name}::{v} {{ {binds} }} => \
                             ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{v}\"), {inner})])),"
                        )
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                                items.join(", ")
                            )
                        };
                        format!(
                            "{name}::{v}({}) => \
                             ::serde::Value::Map(::std::vec::Vec::from([\
                             (::std::string::String::from(\"{v}\"), {inner})])),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_ctor(path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::__private::read_field({src}, \"{f}\")?"))
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok({})",
                    gen_named_ctor(name, fs, "v")
                ),
                Fields::Tuple(n) => {
                    if *n == 1 {
                        format!(
                            "::std::result::Result::Ok({name}(\
                             ::serde::Deserialize::from_value(v)?))"
                        )
                    } else {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        format!(
                            "match v {{\n\
                                 ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                     ::std::result::Result::Ok({name}({})),\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError(::std::format!(\
                                     \"expected {n}-element array for {name}, got {{__other:?}}\"))),\n\
                             }}",
                            items.join(", ")
                        )
                    }
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({}),",
                        gen_named_ctor(&format!("{name}::{v}"), fs, "__inner")
                    )),
                    Fields::Tuple(n) => {
                        if *n == 1 {
                            Some(format!(
                                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::from_value(__inner)?)),"
                            ))
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{v}\" => match __inner {{\n\
                                     ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                         ::std::result::Result::Ok({name}::{v}({})),\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError(::std::format!(\
                                         \"bad payload for variant {v}: {{__other:?}}\"))),\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let __tag = __entries[0].0.as_str();\n\
                                 let __inner = &__entries[0].1;\n\
                                 match __tag {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"cannot read {name} from {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
