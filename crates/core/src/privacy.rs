//! The `(ε1, ε2)`-privacy model (Definitions 1–4 of the paper).

use serde::{Deserialize, Serialize};

/// A user's `(ε1, ε2)`-privacy requirement.
///
/// - Topics with boost `B(t|qu) > ε1` are **relevant** and form the user
///   intention `U` (Definitions 1–2).
/// - The requirement is met when every `t ∈ U` has cycle boost
///   `B(t|C) ≤ ε2` (Definition 4).
/// - The model requires `ε1 ≥ ε2 > 0` so that suppressed topics fall below
///   the relevance bar, creating reasonable doubt (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyRequirement {
    /// Relevance threshold ε1 (e.g. 0.05 for the paper's default 5%).
    pub eps1: f64,
    /// Exposure threshold ε2 (e.g. 0.01 for the paper's default 1%).
    pub eps2: f64,
}

impl PrivacyRequirement {
    /// Creates a requirement, enforcing `ε1 ≥ ε2 > 0`.
    pub fn new(eps1: f64, eps2: f64) -> Result<Self, PrivacyModelError> {
        if !(eps2 > 0.0 && eps1 >= eps2 && eps1 < 1.0) {
            return Err(PrivacyModelError::InvalidThresholds { eps1, eps2 });
        }
        Ok(Self { eps1, eps2 })
    }

    /// The paper's default setting: ε1 = 5%, ε2 = 1%.
    pub fn paper_default() -> Self {
        Self {
            eps1: 0.05,
            eps2: 0.01,
        }
    }

    /// Definition 2: the user intention `U` — topics whose boost exceeds ε1.
    pub fn user_intention(&self, boosts: &[f64]) -> Vec<usize> {
        boosts
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > self.eps1)
            .map(|(t, _)| t)
            .collect()
    }

    /// Definition 4: whether a cycle's boosts satisfy the requirement for
    /// the given intention. Vacuously true for an empty intention.
    pub fn is_satisfied(&self, cycle_boosts: &[f64], intention: &[usize]) -> bool {
        intention.iter().all(|&t| cycle_boosts[t] <= self.eps2)
    }

    /// Produces a full certificate for audit/reporting.
    pub fn certify(&self, cycle_boosts: &[f64], intention: &[usize]) -> PrivacyCertificate {
        let exposure = intention
            .iter()
            .map(|&t| cycle_boosts[t])
            .fold(f64::NEG_INFINITY, f64::max);
        let exposure = if intention.is_empty() { 0.0 } else { exposure };
        PrivacyCertificate {
            requirement: *self,
            intention: intention.to_vec(),
            exposure,
            satisfied: self.is_satisfied(cycle_boosts, intention),
        }
    }
}

/// Errors of the privacy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PrivacyModelError {
    /// Thresholds violate `ε1 ≥ ε2 > 0` (or ε1 ≥ 1).
    InvalidThresholds {
        /// Offending ε1.
        eps1: f64,
        /// Offending ε2.
        eps2: f64,
    },
}

impl std::fmt::Display for PrivacyModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrivacyModelError::InvalidThresholds { eps1, eps2 } => write!(
                f,
                "invalid (ε1, ε2) = ({eps1}, {eps2}): the model requires ε1 ≥ ε2 > 0 and ε1 < 1"
            ),
        }
    }
}

impl std::error::Error for PrivacyModelError {}

/// Outcome of checking a cycle against a requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyCertificate {
    /// The requirement checked against.
    pub requirement: PrivacyRequirement,
    /// The user intention `U` that was protected.
    pub intention: Vec<usize>,
    /// `max_{t∈U} B(t|C)` (0 when `U` is empty).
    pub exposure: f64,
    /// Whether Definition 4 holds.
    pub satisfied: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_validated() {
        assert!(PrivacyRequirement::new(0.05, 0.01).is_ok());
        assert!(PrivacyRequirement::new(0.05, 0.05).is_ok());
        assert!(PrivacyRequirement::new(0.01, 0.05).is_err(), "ε1 < ε2");
        assert!(PrivacyRequirement::new(0.05, 0.0).is_err(), "ε2 = 0");
        assert!(PrivacyRequirement::new(0.05, -0.1).is_err());
        assert!(PrivacyRequirement::new(1.5, 0.1).is_err());
        let err = PrivacyRequirement::new(0.01, 0.05).unwrap_err();
        assert!(format!("{err}").contains("ε1 ≥ ε2"));
    }

    #[test]
    fn paper_default() {
        let req = PrivacyRequirement::paper_default();
        assert_eq!(req.eps1, 0.05);
        assert_eq!(req.eps2, 0.01);
    }

    #[test]
    fn intention_extraction() {
        let req = PrivacyRequirement::new(0.05, 0.01).unwrap();
        let boosts = vec![0.20, 0.01, 0.06, -0.02, 0.05];
        // Strictly greater than ε1: topic 4 at exactly 0.05 is excluded.
        assert_eq!(req.user_intention(&boosts), vec![0, 2]);
    }

    #[test]
    fn satisfaction_definition() {
        let req = PrivacyRequirement::new(0.05, 0.01).unwrap();
        let intention = vec![0, 2];
        assert!(req.is_satisfied(&[0.01, 0.5, 0.005, 0.0], &intention));
        assert!(!req.is_satisfied(&[0.02, 0.0, 0.0, 0.0], &intention));
        // Boundary: B = ε2 is allowed (≤).
        assert!(req.is_satisfied(&[0.01, 0.0, 0.01, 0.0], &intention));
        // Empty intention is vacuously private.
        assert!(req.is_satisfied(&[0.9, 0.9], &[]));
    }

    #[test]
    fn certificate_reports_exposure() {
        let req = PrivacyRequirement::new(0.05, 0.01).unwrap();
        let cert = req.certify(&[0.008, 0.3, 0.002], &[0, 2]);
        assert!((cert.exposure - 0.008).abs() < 1e-12);
        assert!(cert.satisfied);
        let cert2 = req.certify(&[0.2, 0.0, 0.0], &[0]);
        assert!(!cert2.satisfied);
        let empty = req.certify(&[0.2], &[]);
        assert_eq!(empty.exposure, 0.0);
        assert!(empty.satisfied);
    }
}
