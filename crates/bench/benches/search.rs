//! Microbenchmarks of the search engine: per-query latency by query
//! length and scoring model. This is the server-side cost that each ghost
//! query multiplies — the overhead TopPriv imposes on the engine.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use toppriv_bench::Scale;
use tsearch_corpus::{generate_workload, SyntheticCorpus, WorkloadConfig};
use tsearch_search::{Query, ScoringModel, SearchEngine};
use tsearch_text::Analyzer;

fn engine(model: ScoringModel) -> (SearchEngine, Vec<Vec<u32>>) {
    let corpus = SyntheticCorpus::generate(Scale::quick().corpus);
    let docs = corpus.token_docs();
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = SearchEngine::build(&docs, &texts, Analyzer::new(), corpus.vocab.clone(), model);
    let queries: Vec<Vec<u32>> = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 32,
            ..WorkloadConfig::default()
        },
    )
    .into_iter()
    .map(|q| q.tokens)
    .collect();
    (engine, queries)
}

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_topk");
    for (name, model) in [
        ("tfidf", ScoringModel::TfIdfCosine),
        ("bm25", ScoringModel::bm25_default()),
    ] {
        let (engine, queries) = engine(model);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let parsed: Vec<Query> = queries.iter().map(|t| Query::from_tokens(t)).collect();
            let mut i = 0usize;
            b.iter(|| {
                let q = &parsed[i % parsed.len()];
                i += 1;
                black_box(engine.evaluate(q, 10))
            })
        });
    }
    group.finish();
}

fn bench_cycle_overhead(c: &mut Criterion) {
    // Server-side cost of a full cycle (1 genuine + n ghosts) vs one query.
    let (engine, queries) = engine(ScoringModel::TfIdfCosine);
    let mut group = c.benchmark_group("search_cycle_overhead");
    for &cycle_len in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(cycle_len),
            &cycle_len,
            |b, &v| {
                let parsed: Vec<Query> = queries.iter().map(|t| Query::from_tokens(t)).collect();
                let mut i = 0usize;
                b.iter(|| {
                    for _ in 0..v {
                        let q = &parsed[i % parsed.len()];
                        i += 1;
                        black_box(engine.evaluate(q, 10));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_concurrent_throughput(c: &mut Criterion) {
    // Aggregate engine throughput with 1 vs 4 concurrent clients — the
    // engine's shared state is one query-log mutex, so scaling should be
    // near-linear until memory bandwidth binds (experiment `load` reports
    // the derived q/s figures).
    use std::sync::atomic::{AtomicUsize, Ordering};
    let (engine, queries) = engine(ScoringModel::TfIdfCosine);
    let parsed: Vec<Query> = queries.iter().map(|t| Query::from_tokens(t)).collect();
    let mut group = c.benchmark_group("search_concurrent");
    group.sample_size(20);
    const BATCH: usize = 256;
    group.throughput(criterion::Throughput::Elements(BATCH as u64));
    for &workers in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let next = AtomicUsize::new(0);
                    std::thread::scope(|s| {
                        for _ in 0..workers {
                            s.spawn(|| loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= BATCH {
                                    break;
                                }
                                black_box(engine.evaluate(&parsed[i % parsed.len()], 10));
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_latency,
    bench_cycle_overhead,
    bench_concurrent_throughput
);
criterion_main!(benches);
