//! TREC-style benchmark workload generation.
//!
//! Substitutes for the 150 TREC-1/TREC-2 ad-hoc queries of the paper: every
//! query targets one or two clearly-defined ground-truth topics and contains
//! 2–20 salient terms, mirroring the term-count range the paper reports.

use crate::dist::Categorical;
use crate::generator::SyntheticCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tsearch_text::TermId;

/// Configuration for workload generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of queries (the paper uses 150).
    pub num_queries: usize,
    /// Minimum query length in terms.
    pub min_terms: usize,
    /// Maximum query length in terms.
    pub max_terms: usize,
    /// Probability that a query spans two topics instead of one.
    pub two_topic_prob: f64,
    /// Terms are sampled from the top `salient_pool` terms of each target
    /// topic, weighted by the ground-truth topic distribution.
    pub salient_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            num_queries: 150,
            min_terms: 2,
            max_terms: 20,
            two_topic_prob: 0.25,
            salient_pool: 40,
            seed: 0x7E_EC,
        }
    }
}

/// One benchmark query with its ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkQuery {
    /// Dense query id.
    pub id: u32,
    /// Surface text.
    pub text: String,
    /// Analyzed token ids.
    pub tokens: Vec<TermId>,
    /// Ground-truth target topics (1 or 2).
    pub target_topics: Vec<usize>,
}

impl BenchmarkQuery {
    /// Number of search terms.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the query has no terms (never true for generated queries).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Generates a benchmark workload against `corpus`.
pub fn generate_workload(corpus: &SyntheticCorpus, config: &WorkloadConfig) -> Vec<BenchmarkQuery> {
    assert!(config.min_terms >= 1 && config.min_terms <= config.max_terms);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.num_queries);
    for id in 0..config.num_queries {
        let two = rng.gen::<f64>() < config.two_topic_prob && corpus.num_topics() >= 2;
        let mut targets: Vec<usize> = Vec::with_capacity(2);
        targets.push(rng.gen_range(0..corpus.num_topics()));
        if two {
            loop {
                let t = rng.gen_range(0..corpus.num_topics());
                if t != targets[0] {
                    targets.push(t);
                    break;
                }
            }
        }
        let len = rng.gen_range(config.min_terms..=config.max_terms);
        let mut tokens: Vec<TermId> = Vec::with_capacity(len);
        let mut used: HashSet<TermId> = HashSet::with_capacity(len * 2);
        // Round-robin over target topics so two-topic queries mix both.
        let mut attempts = 0usize;
        while tokens.len() < len && attempts < len * 20 {
            attempts += 1;
            let topic = &corpus.topics[targets[tokens.len() % targets.len()]];
            let pool = topic.top_terms(config.salient_pool);
            let weights: Vec<f64> = pool.iter().map(|&(_, w)| w).collect();
            let sampler = match Categorical::new(&weights) {
                Some(s) => s,
                None => break,
            };
            let (term, _) = pool[sampler.sample(&mut rng)];
            if used.insert(term) {
                tokens.push(term);
            }
        }
        let text = tokens
            .iter()
            .map(|&t| corpus.vocab.term(t))
            .collect::<Vec<_>>()
            .join(" ");
        queries.push(BenchmarkQuery {
            id: id as u32,
            text,
            tokens,
            target_topics: targets,
        });
    }
    queries
}

/// Ground-truth relevance: a document is relevant to a query if its combined
/// mixture weight on the query's target topics is at least `threshold`.
pub fn relevance_judgments(
    corpus: &SyntheticCorpus,
    query: &BenchmarkQuery,
    threshold: f64,
) -> HashSet<u32> {
    corpus
        .docs
        .iter()
        .filter(|d| {
            let mass: f64 = query.target_topics.iter().map(|&t| d.topic_weight(t)).sum();
            mass >= threshold
        })
        .map(|d| d.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusConfig;

    fn tiny_corpus() -> SyntheticCorpus {
        SyntheticCorpus::generate(CorpusConfig::tiny())
    }

    #[test]
    fn workload_shape() {
        let corpus = tiny_corpus();
        let cfg = WorkloadConfig {
            num_queries: 30,
            ..WorkloadConfig::default()
        };
        let queries = generate_workload(&corpus, &cfg);
        assert_eq!(queries.len(), 30);
        for q in &queries {
            assert!(q.len() >= cfg.min_terms, "query {} too short", q.id);
            assert!(q.len() <= cfg.max_terms);
            assert!(!q.target_topics.is_empty() && q.target_topics.len() <= 2);
            // No duplicate terms.
            let set: HashSet<_> = q.tokens.iter().collect();
            assert_eq!(set.len(), q.tokens.len());
            // Text is consistent with token ids.
            let words: Vec<&str> = q.text.split(' ').collect();
            assert_eq!(words.len(), q.tokens.len());
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let corpus = tiny_corpus();
        let cfg = WorkloadConfig::default();
        let a = generate_workload(&corpus, &cfg);
        let b = generate_workload(&corpus, &cfg);
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.tokens, qb.tokens);
            assert_eq!(qa.target_topics, qb.target_topics);
        }
    }

    #[test]
    fn query_terms_come_from_target_topics() {
        let corpus = tiny_corpus();
        let cfg = WorkloadConfig {
            num_queries: 20,
            two_topic_prob: 0.0,
            ..WorkloadConfig::default()
        };
        for q in generate_workload(&corpus, &cfg) {
            let topic = &corpus.topics[q.target_topics[0]];
            let topic_terms: HashSet<TermId> = topic.term_weights.iter().map(|&(t, _)| t).collect();
            for tok in &q.tokens {
                assert!(topic_terms.contains(tok), "term outside target topic");
            }
        }
    }

    #[test]
    fn relevance_judgments_respect_threshold() {
        let corpus = tiny_corpus();
        let queries = generate_workload(&corpus, &WorkloadConfig::default());
        let q = &queries[0];
        let strict = relevance_judgments(&corpus, q, 0.9);
        let loose = relevance_judgments(&corpus, q, 0.1);
        assert!(strict.len() <= loose.len());
        for id in &strict {
            assert!(loose.contains(id));
        }
    }
}
