//! Topic-cognizant ghost query generation — the TopPriv algorithm of
//! Section IV-C.
//!
//! Given a user query, the generator:
//! 1. infers the intention `U` (topics boosted above ε1);
//! 2. repeatedly picks a masking topic `tm ∈ T\U\Tm\X`, composes a
//!    semantically coherent ghost query from words descriptive of `tm`
//!    (biased by `Pr(w) = Σ_t Pr(w|t)·1[t=tm] = Pr(w|tm)`);
//! 3. keeps the ghost only if it lowers the exposure of `U` (otherwise the
//!    topic goes into the ineffective set `X` and another is tried);
//! 4. stops when every `t ∈ U` has `B(t|C) ≤ ε2`, or when masking topics
//!    are exhausted;
//! 5. shuffles the cycle before submission.

use crate::belief::BeliefEngine;
use crate::metrics::{exposure, PrivacyMetrics};
use crate::privacy::PrivacyRequirement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;
use tsearch_text::TermId;

/// How ghost terms are drawn from a masking topic's distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TermSelection {
    /// The paper's Step 3(b): bias toward high `Pr(w|tm)` within the
    /// term pool, regardless of how common the words are corpus-wide.
    #[default]
    Biased,
    /// Extension: additionally match the *specificity* of the genuine
    /// query. Each word's specificity is `−ln Pr(w)` under the model
    /// (`Pr(w) = Σ_t Pr(w|t)·Pr(t)` — computable client-side with no
    /// extra data); the candidate pool is re-ranked so ghost words sit in
    /// the same specificity band as the user's words. Motivated by two
    /// measured weaknesses of `Biased`: popular ghost terms cost the
    /// engine ~7× a genuine query (experiment `load`), and their lower
    /// sharpness is a classifier tell (experiment `classifier`) — the
    /// same reasoning PDX applies to its decoy terms.
    SpecificityMatched,
}

/// Ghost generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GhostConfig {
    /// Minimum ghost length as a multiple of `|qu|` (Step 3a).
    pub min_len_mult: f64,
    /// Maximum ghost length as a multiple of `|qu|`.
    pub max_len_mult: f64,
    /// Hard cap on cycle length (the algorithm naturally terminates after
    /// exhausting `T\U`, but a cap keeps worst-case latency bounded).
    pub max_cycle_len: usize,
    /// Ghost words are sampled (weight-biased) from the `term_pool` most
    /// descriptive words of the masking topic. A bounded pool makes the
    /// ghosts as statistically sharp as real topical queries — the paper's
    /// example ghosts ("dow index investors … stock volume") are exactly
    /// the top words of their topics. `0` means the whole vocabulary.
    pub term_pool: usize,
    /// Term-selection strategy (see [`TermSelection`]).
    pub term_selection: TermSelection,
    /// RNG seed; combined with the query content for per-query determinism.
    pub seed: u64,
}

impl Default for GhostConfig {
    fn default() -> Self {
        Self {
            min_len_mult: 1.0,
            max_len_mult: 2.0,
            max_cycle_len: 64,
            term_pool: 40,
            term_selection: TermSelection::default(),
            seed: 0x607057,
        }
    }
}

/// One query of a cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleQuery {
    /// Analyzed token ids (sorted — the engine treats queries as bags of
    /// words, and sorting hides any generation order).
    pub tokens: Vec<TermId>,
    /// Whether this is the genuine user query. Ground-truth label for
    /// evaluation only; never shown to the server.
    pub is_genuine: bool,
    /// The masking topic of a ghost query (`None` for the genuine query).
    pub masking_topic: Option<usize>,
}

/// The outcome of running the TopPriv algorithm on one user query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleResult {
    /// The shuffled cycle `C` (genuine query plus ghosts).
    pub cycle: Vec<CycleQuery>,
    /// Index of the genuine query inside `cycle`.
    pub genuine_index: usize,
    /// The protected intention `U` (topic ids).
    pub intention: Vec<usize>,
    /// Boost vector `B(t|qu)` of the unprotected query.
    pub solo_boosts: Vec<f64>,
    /// Boost vector `B(t|C)` of the final cycle.
    pub cycle_boosts: Vec<f64>,
    /// Masking topics actually used, in generation order.
    pub masking_topics: Vec<usize>,
    /// Topics tried and found ineffective (the set `X`).
    pub ineffective_topics: Vec<usize>,
    /// Whether Definition 4 holds for the final cycle.
    pub satisfied: bool,
    /// Metrics bundle (exposure, mask, υ, generation time, ...).
    pub metrics: PrivacyMetrics,
}

impl CycleResult {
    /// Cycle length υ.
    pub fn cycle_len(&self) -> usize {
        self.cycle.len()
    }

    /// The genuine query's tokens.
    pub fn genuine(&self) -> &CycleQuery {
        &self.cycle[self.genuine_index]
    }

    /// Token slices of the whole cycle (adversary view).
    pub fn cycle_tokens(&self) -> Vec<&[TermId]> {
        self.cycle.iter().map(|q| q.tokens.as_slice()).collect()
    }
}

/// The TopPriv ghost query generator.
#[derive(Debug, Clone)]
pub struct GhostGenerator {
    belief: BeliefEngine,
    requirement: PrivacyRequirement,
    config: GhostConfig,
    /// When false, Step 3(c)'s effectiveness check is skipped (every
    /// candidate ghost is kept). Exists for the ablation study only.
    effectiveness_check: bool,
    /// Corpus-wide `Pr(w) = Σ_t Pr(w|t)·Pr(t)`, materialized only for
    /// [`TermSelection::SpecificityMatched`].
    word_prior: Option<Vec<f64>>,
}

impl GhostGenerator {
    /// Creates a generator.
    pub fn new(belief: BeliefEngine, requirement: PrivacyRequirement, config: GhostConfig) -> Self {
        let word_prior = (config.term_selection == TermSelection::SpecificityMatched)
            .then(|| Self::compute_word_prior(&belief));
        Self {
            belief,
            requirement,
            config,
            effectiveness_check: true,
            word_prior,
        }
    }

    /// `Pr(w)` for every word under the model's corpus prior.
    fn compute_word_prior(belief: &BeliefEngine) -> Vec<f64> {
        let model = belief.model();
        let prior = model.prior();
        (0..model.vocab_size() as TermId)
            .map(|w| {
                model
                    .word_topics(w)
                    .iter()
                    .zip(prior)
                    .map(|(&phi, &p)| phi * p)
                    .sum()
            })
            .collect()
    }

    /// Word specificity `−ln Pr(w)`; higher = rarer.
    fn specificity(&self, w: TermId) -> f64 {
        let pr = self.word_prior.as_ref().expect("prior materialized")[w as usize];
        -pr.max(f64::MIN_POSITIVE).ln()
    }

    /// Disables the Step 3(c) effectiveness check (ablation `abl1`).
    pub fn without_effectiveness_check(mut self) -> Self {
        self.effectiveness_check = false;
        self
    }

    /// The belief engine in use.
    pub fn belief(&self) -> &BeliefEngine {
        &self.belief
    }

    /// The privacy requirement in force.
    pub fn requirement(&self) -> PrivacyRequirement {
        self.requirement
    }

    /// Runs the algorithm of Section IV-C on `user_tokens`.
    pub fn generate(&self, user_tokens: &[TermId]) -> CycleResult {
        self.run(user_tokens, None)
    }

    /// Variant with a fixed target cycle length υ, used by the Figure 5
    /// comparison against PDX at equal word budgets: exactly `target − 1`
    /// ghosts are generated (the ε2 stopping rule is ignored; the Step 3c
    /// effectiveness check still applies, and masking topics may repeat
    /// once `T\U` is exhausted).
    pub fn generate_with_target(&self, user_tokens: &[TermId], target: usize) -> CycleResult {
        self.run(user_tokens, Some(target.max(1)))
    }

    fn run(&self, user_tokens: &[TermId], target_cycle_len: Option<usize>) -> CycleResult {
        let start = Instant::now();
        let num_topics = self.belief.num_topics();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ token_hash(user_tokens));

        // Step 1: intention.
        let user_posterior = self.belief.posterior(user_tokens);
        let solo_boosts = BeliefEngine::boost_from_posterior(&user_posterior, self.belief.prior());
        let intention = self.requirement.user_intention(&solo_boosts);
        // SpecificityMatched: ghosts should be as rare/common as the
        // genuine query's own words.
        let target_spec = self.word_prior.as_ref().and_then(|_| {
            if user_tokens.is_empty() {
                return None;
            }
            let sum: f64 = user_tokens.iter().map(|&w| self.specificity(w)).sum();
            Some(sum / user_tokens.len() as f64)
        });

        // Step 2: initialization.
        let mut posteriors: Vec<Vec<f64>> = vec![user_posterior];
        let mut cycle: Vec<CycleQuery> = vec![CycleQuery {
            tokens: sorted(user_tokens),
            is_genuine: true,
            masking_topic: None,
        }];
        let mut masking: Vec<usize> = Vec::new(); // Tm
        let mut ineffective: Vec<usize> = Vec::new(); // X
        let in_intention: HashSet<usize> = intention.iter().copied().collect();

        // Step 3: the repeat loop.
        let cap = target_cycle_len
            .map(|t| t.min(self.config.max_cycle_len))
            .unwrap_or(self.config.max_cycle_len);
        let mut cycle_boosts = self.belief.cycle_boost(&posteriors);
        let mut attempts = 0usize;
        let max_attempts = (cap * 8).max(num_topics * 2);
        loop {
            attempts += 1;
            if attempts > max_attempts {
                break;
            }
            let done = match target_cycle_len {
                // Fixed-υ mode: stop only at the target length.
                Some(target) => cycle.len() >= target,
                // Paper mode: stop when (ε1, ε2)-privacy holds.
                None => self.requirement.is_satisfied(&cycle_boosts, &intention),
            };
            if done || cycle.len() >= cap {
                break;
            }
            // Candidate masking topics: T \ U \ Tm \ X.
            let mut candidates: Vec<usize> = (0..num_topics)
                .filter(|t| {
                    !in_intention.contains(t) && !masking.contains(t) && !ineffective.contains(t)
                })
                .collect();
            let mut reuse_phase = false;
            if candidates.is_empty() {
                if target_cycle_len.is_some() {
                    // Fixed-υ mode keeps going: allow masking topics to
                    // repeat (but never intention topics), and stop
                    // filtering on effectiveness — the word budget must be
                    // spent even when exposure cannot drop further.
                    reuse_phase = true;
                    candidates = (0..num_topics)
                        .filter(|t| !in_intention.contains(t))
                        .collect();
                    if candidates.is_empty() {
                        break;
                    }
                } else {
                    break; // exhausted all masking topics (paper: exit loop)
                }
            }
            // Step 3(b): random masking topic, coherent ghost terms.
            let tm = candidates[rng.gen_range(0..candidates.len())];
            let ghost_len = self.sample_ghost_len(user_tokens.len().max(1), &mut rng);
            let ghost_tokens = self.sample_ghost_terms(tm, ghost_len, target_spec, &mut rng);
            if ghost_tokens.is_empty() {
                ineffective.push(tm);
                continue;
            }
            // Step 3(c): effectiveness check.
            let ghost_posterior = self.belief.posterior(&ghost_tokens);
            posteriors.push(ghost_posterior);
            let new_boosts = self.belief.cycle_boost(&posteriors);
            let old_exposure = exposure(&cycle_boosts, &intention);
            let new_exposure = exposure(&new_boosts, &intention);
            if self.effectiveness_check && !reuse_phase && new_exposure >= old_exposure {
                // Ghost increases (or fails to reduce) exposure: discard it
                // and mark the topic ineffective.
                posteriors.pop();
                ineffective.push(tm);
                continue;
            }
            // Step 3(d): accept.
            masking.push(tm);
            cycle.push(CycleQuery {
                tokens: sorted(&ghost_tokens),
                is_genuine: false,
                masking_topic: Some(tm),
            });
            cycle_boosts = new_boosts;
        }

        // Step 4: shuffle.
        shuffle(&mut cycle, &mut rng);
        let genuine_index = cycle
            .iter()
            .position(|q| q.is_genuine)
            .expect("genuine query present");

        let satisfied = self.requirement.is_satisfied(&cycle_boosts, &intention);
        let mut metrics = PrivacyMetrics::from_boosts(&cycle_boosts, &intention);
        metrics.cycle_len = cycle.len();
        metrics.generation_secs = start.elapsed().as_secs_f64();
        CycleResult {
            cycle,
            genuine_index,
            intention,
            solo_boosts,
            cycle_boosts,
            masking_topics: masking,
            ineffective_topics: ineffective,
            satisfied,
            metrics,
        }
    }

    /// Step 3(a): ghost length as a random multiple of `|qu|`.
    fn sample_ghost_len(&self, user_len: usize, rng: &mut StdRng) -> usize {
        let mult = if self.config.max_len_mult > self.config.min_len_mult {
            rng.gen_range(self.config.min_len_mult..self.config.max_len_mult)
        } else {
            self.config.min_len_mult
        };
        ((user_len as f64 * mult).round() as usize).max(1)
    }

    /// Step 3(b): `|qg|` distinct words sampled with bias toward high
    /// `Pr(w|tm)` — semantically coherent by Definition 3 because they all
    /// describe `tm`. With [`TermSelection::SpecificityMatched`] and a
    /// target, the pool is re-ranked so the retained candidates sit in
    /// the genuine query's specificity band.
    fn sample_ghost_terms(
        &self,
        tm: usize,
        len: usize,
        target_spec: Option<f64>,
        rng: &mut StdRng,
    ) -> Vec<TermId> {
        // Candidate pool: the most descriptive words of the masking topic
        // (Pr(w) = Σ_t Pr(w|t)·1[t=tm] = Pr(w|tm), per Step 3b's one-hot
        // topic vector), truncated to keep ghosts as sharp as real queries.
        let model = self.belief.model();
        let pool = match target_spec {
            Some(target) if self.config.term_pool > 0 => {
                // Wider slice of the topic's words, re-ranked by distance
                // to the target specificity, truncated to the pool size.
                // Weights stay Pr(w|tm) so the ghost remains coherent.
                let wide = self.config.term_pool * 4;
                let mut candidates = model.top_words(tm, wide);
                candidates.sort_by(|a, b| {
                    let da = (self.specificity(a.0) - target).abs();
                    let db = (self.specificity(b.0) - target).abs();
                    da.partial_cmp(&db).expect("finite specificity")
                });
                candidates.truncate(self.config.term_pool);
                candidates
            }
            _ if self.config.term_pool == 0 => {
                let dist = model.topic_word_dist(tm);
                (0..dist.len() as TermId)
                    .map(|w| (w, dist[w as usize]))
                    .collect::<Vec<_>>()
            }
            _ => model.top_words(tm, self.config.term_pool),
        };
        let total: f64 = pool.iter().map(|&(_, p)| p).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        // Cumulative table for inverse-CDF sampling within the pool.
        let mut cumulative = Vec::with_capacity(pool.len());
        let mut acc = 0.0;
        for &(_, p) in &pool {
            acc += p;
            cumulative.push(acc);
        }
        let mut chosen: Vec<TermId> = Vec::with_capacity(len);
        let mut used: HashSet<TermId> = HashSet::with_capacity(len * 2);
        let mut attempts = 0usize;
        let max_attempts = len * 50 + 100;
        while chosen.len() < len.min(pool.len()) && attempts < max_attempts {
            attempts += 1;
            let u = rng.gen::<f64>() * acc;
            let idx =
                match cumulative.binary_search_by(|probe| probe.partial_cmp(&u).expect("finite")) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                }
                .min(cumulative.len() - 1);
            let term = pool[idx].0;
            if used.insert(term) {
                chosen.push(term);
            }
        }
        chosen
    }
}

fn sorted(tokens: &[TermId]) -> Vec<TermId> {
    let mut v = tokens.to_vec();
    v.sort_unstable();
    v
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

fn token_hash(tokens: &[TermId]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    tokens.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_lda::{LdaConfig, LdaModel, LdaTrainer};

    /// Train a 4-topic model over four separated word blocks of 8 words.
    fn trained_model() -> std::sync::Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..120 {
            let base: u32 = (d % 4) * 8;
            docs.push(
                (0..40)
                    .map(|i| base + (i % 8) as u32)
                    .collect::<Vec<TermId>>(),
            );
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        std::sync::Arc::new(LdaTrainer::train(
            &refs,
            32,
            LdaConfig {
                iterations: 80,
                alpha: Some(0.3),
                ..LdaConfig::with_topics(4)
            },
        ))
    }

    fn generator(model: &std::sync::Arc<LdaModel>) -> GhostGenerator {
        GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            GhostConfig::default(),
        )
    }

    #[test]
    fn produces_a_cycle_with_ghosts() {
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate(&[0, 1, 2, 3]);
        assert!(!result.intention.is_empty(), "on-topic query has intention");
        assert!(result.cycle_len() >= 2, "ghosts were generated");
        assert_eq!(
            result.cycle.iter().filter(|q| q.is_genuine).count(),
            1,
            "exactly one genuine query"
        );
        assert!(result.cycle[result.genuine_index].is_genuine);
    }

    #[test]
    fn ghosts_reduce_exposure() {
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate(&[0, 1, 2, 3]);
        let solo_exposure = exposure(&result.solo_boosts, &result.intention);
        assert!(
            result.metrics.exposure < solo_exposure,
            "cycle exposure {} should be below solo {}",
            result.metrics.exposure,
            solo_exposure
        );
    }

    #[test]
    fn ghost_terms_avoid_intention_topics() {
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate(&[0, 1, 2, 3]);
        for &tm in &result.masking_topics {
            assert!(
                !result.intention.contains(&tm),
                "masking topic {tm} is in the intention"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let model = trained_model();
        let gen = generator(&model);
        let a = gen.generate(&[0, 1, 2]);
        let b = gen.generate(&[0, 1, 2]);
        assert_eq!(a.cycle_len(), b.cycle_len());
        for (qa, qb) in a.cycle.iter().zip(&b.cycle) {
            assert_eq!(qa.tokens, qb.tokens);
            assert_eq!(qa.is_genuine, qb.is_genuine);
        }
    }

    #[test]
    fn ghost_queries_are_coherent() {
        // All terms of a ghost should rank highly under its masking topic:
        // semantically coherent by construction (Definition 3).
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate(&[0, 1, 2, 3]);
        let uniform = 1.0 / model.vocab_size() as f64;
        for q in &result.cycle {
            let Some(tm) = q.masking_topic else { continue };
            let mean_p: f64 =
                q.tokens.iter().map(|&w| model.phi(tm, w)).sum::<f64>() / q.tokens.len() as f64;
            // Weight-biased sampling can occasionally pick a low-mass word,
            // but on average ghost words must be far more probable under
            // their masking topic than a uniform draw would be.
            assert!(
                mean_p > 3.0 * uniform,
                "ghost for topic {tm} not coherent: mean Pr(w|tm) = {mean_p}, uniform = {uniform}"
            );
        }
    }

    #[test]
    fn off_intent_query_needs_no_ghosts() {
        let model = trained_model();
        // A requirement so loose nothing is ever relevant.
        let gen = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.95, 0.95).unwrap(),
            GhostConfig::default(),
        );
        let result = gen.generate(&[0, 1]);
        assert!(result.intention.is_empty());
        assert_eq!(result.cycle_len(), 1, "no ghosts needed");
        assert!(result.satisfied);
    }

    #[test]
    fn cycle_len_is_capped() {
        let model = trained_model();
        let gen = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            // Impossibly tight ε2 forces the loop to run long.
            PrivacyRequirement::new(0.0001, 0.0001).unwrap(),
            GhostConfig {
                max_cycle_len: 3,
                ..GhostConfig::default()
            },
        );
        let result = gen.generate(&[0, 1, 2, 3]);
        assert!(result.cycle_len() <= 3);
    }

    #[test]
    fn ablation_without_check_keeps_all_ghosts() {
        let model = trained_model();
        let gen = generator(&model).without_effectiveness_check();
        let result = gen.generate(&[0, 1, 2, 3]);
        assert!(result.ineffective_topics.is_empty());
    }

    #[test]
    fn ghost_lengths_track_user_query() {
        let model = trained_model();
        let gen = generator(&model);
        let user = [0u32, 1, 2, 3, 4, 5];
        let result = gen.generate(&user);
        for q in &result.cycle {
            if !q.is_genuine {
                assert!(q.tokens.len() >= user.len(), "min multiple 1.0");
                assert!(q.tokens.len() <= 2 * user.len() + 1, "max multiple 2.0");
            }
        }
    }

    #[test]
    fn fixed_target_mode_hits_requested_length() {
        let model = trained_model();
        let gen = generator(&model);
        for target in [2usize, 4, 6] {
            let result = gen.generate_with_target(&[0, 1, 2, 3], target);
            assert_eq!(
                result.cycle_len(),
                target,
                "target {target} produced {}",
                result.cycle_len()
            );
            assert_eq!(result.cycle.iter().filter(|q| q.is_genuine).count(), 1);
        }
    }

    #[test]
    fn fixed_target_can_exceed_topic_count() {
        // 4 topics total, target 8: masking topics must repeat.
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate_with_target(&[0, 1, 2, 3], 8);
        assert!(result.cycle_len() >= 4, "got {}", result.cycle_len());
    }

    #[test]
    fn metrics_are_populated() {
        let model = trained_model();
        let gen = generator(&model);
        let result = gen.generate(&[0, 1, 2, 3]);
        assert_eq!(result.metrics.cycle_len, result.cycle_len());
        assert!(result.metrics.generation_secs >= 0.0);
        assert_eq!(result.metrics.num_relevant, result.intention.len());
    }

    #[test]
    fn specificity_matched_generator_still_satisfies() {
        let model = trained_model();
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            GhostConfig {
                term_selection: TermSelection::SpecificityMatched,
                ..GhostConfig::default()
            },
        );
        let result = generator.generate(&[0, 1, 2, 3]);
        assert!(!result.intention.is_empty());
        assert!(result.cycle_len() > 1, "ghosts are still generated");
        // Ghost terms never come from the intention topic's word block.
        for (i, q) in result.cycle.iter().enumerate() {
            if i != result.genuine_index {
                assert!(q.tokens.iter().all(|&w| w >= 8 || w >= 32));
            }
        }
    }

    #[test]
    fn specificity_matching_shifts_ghost_terms_toward_query_band() {
        // A model with a skewed prior makes some words much more common
        // than others; a rare-term query should pull ghost terms toward
        // the rare end relative to the paper's Biased strategy.
        let model = trained_model();
        let word_prior = GhostGenerator::compute_word_prior(&BeliefEngine::new(model.clone()));
        let mk = |selection: TermSelection| {
            GhostGenerator::new(
                BeliefEngine::new(model.clone()),
                PrivacyRequirement::new(0.10, 0.05).unwrap(),
                GhostConfig {
                    term_selection: selection,
                    term_pool: 4,
                    ..GhostConfig::default()
                },
            )
        };
        // Query = the two *rarest* words of topic block 0.
        let mut block0: Vec<TermId> = (0..8).collect();
        block0.sort_by(|&a, &b| {
            word_prior[a as usize]
                .partial_cmp(&word_prior[b as usize])
                .unwrap()
        });
        let query = vec![block0[0], block0[1]];
        let mean_ghost_prior = |generator: &GhostGenerator| -> f64 {
            let mut sum = 0.0;
            let mut n = 0usize;
            for seed in 0..6u32 {
                let mut q = query.clone();
                q.push(block0[(seed % 2) as usize]); // vary hash -> vary rng
                let r = generator.generate(&q);
                for (i, cq) in r.cycle.iter().enumerate() {
                    if i != r.genuine_index {
                        for &w in &cq.tokens {
                            sum += word_prior[w as usize];
                            n += 1;
                        }
                    }
                }
            }
            if n == 0 {
                f64::NAN
            } else {
                sum / n as f64
            }
        };
        let biased = mk(TermSelection::Biased);
        let matched = mk(TermSelection::SpecificityMatched);
        let p_biased = mean_ghost_prior(&biased);
        let p_matched = mean_ghost_prior(&matched);
        assert!(p_biased.is_finite() && p_matched.is_finite());
        assert!(
            p_matched <= p_biased + 1e-12,
            "matched ghosts ({p_matched:.3e}) should not be more common than biased ({p_biased:.3e})"
        );
    }

    #[test]
    fn biased_default_has_no_prior_table() {
        let model = trained_model();
        let generator = generator(&model);
        assert!(
            generator.word_prior.is_none(),
            "lazy: only materialized when needed"
        );
    }
}
