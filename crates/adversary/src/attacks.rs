//! The attack strategies of Section IV-D.
//!
//! The adversary (the search engine) sees a cycle of queries and knows the
//! LDA model and the ghost-generation algorithm — but not the user's
//! secret `(ε1, ε2)` thresholds nor the client's RNG state. Each attack
//! here implements one of the four circumvention attempts the paper
//! analyzes, so the resilience claims can be tested empirically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use toppriv_core::{
    semantic_coherence, BeliefEngine, GhostConfig, GhostGenerator, PrivacyRequirement,
};
use tsearch_lda::LdaModel;
use tsearch_text::TermId;

/// Attack 1: "discount a ghost query if its intention is exposed" —
/// operationalized as picking the query whose term combination looks most
/// (or least) plausible. Since TopPriv ghosts are semantically coherent by
/// construction, coherence gives the adversary no reliable signal; against
/// TrackMeNot-style random ghosts it works very well.
#[derive(Debug, Clone)]
pub struct CoherenceAttack {
    model: Arc<LdaModel>,
}

impl CoherenceAttack {
    /// Creates the attack.
    pub fn new(model: Arc<LdaModel>) -> Self {
        Self { model }
    }

    /// Guesses the genuine query as the most coherent one (ghosts that are
    /// random jumbles score low; the genuine query is always meaningful).
    pub fn guess_genuine(&self, cycle: &[&[TermId]]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, q) in cycle.iter().enumerate() {
            let score = semantic_coherence(&self.model, q);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Coherence scores of the whole cycle (diagnostics).
    pub fn scores(&self, cycle: &[&[TermId]]) -> Vec<f64> {
        cycle
            .iter()
            .map(|q| semantic_coherence(&self.model, q))
            .collect()
    }
}

/// Attack 2: "discount high-exposure topics" — the adversary takes the top
/// `m` topics by `B(t|C)` as his guess of the intention. Without knowing
/// ε2 he cannot know how many topics to discount, and TopPriv pushes the
/// genuine topics *below* several masking topics.
#[derive(Debug, Clone)]
pub struct ExposureRankAttack {
    belief: BeliefEngine,
    /// Number of top-boost topics to claim as the intention.
    pub guess_m: usize,
}

impl ExposureRankAttack {
    /// Creates the attack guessing the top `guess_m` topics.
    pub fn new(model: Arc<LdaModel>, guess_m: usize) -> Self {
        Self {
            belief: BeliefEngine::new(model),
            guess_m,
        }
    }

    /// Boosts `B(t|C)` as the adversary computes them from the cycle.
    pub fn cycle_boosts(&self, cycle: &[&[TermId]]) -> Vec<f64> {
        let posteriors: Vec<Vec<f64>> = cycle.iter().map(|q| self.belief.posterior(q)).collect();
        self.belief.cycle_boost(&posteriors)
    }

    /// The top-m guess.
    pub fn guess_intention(&self, cycle: &[&[TermId]]) -> Vec<usize> {
        let boosts = self.cycle_boosts(cycle);
        let mut order: Vec<usize> = (0..boosts.len()).collect();
        order.sort_by(|&a, &b| boosts[b].partial_cmp(&boosts[a]).expect("finite"));
        order.truncate(self.guess_m);
        order
    }
}

/// Attack 3: "eliminate query words relating to high-exposure topics" —
/// the adversary strips, from every query in the cycle, the words that
/// rank highly under the most-exposed topics, then re-infers the intention
/// from what remains. The paper's point: polysemous words make this
/// destructive — genuine terms get removed and the recovered intention
/// drifts.
#[derive(Debug, Clone)]
pub struct TermEliminationAttack {
    belief: BeliefEngine,
    /// How many top-exposure topics to target.
    pub topics_to_discount: usize,
    /// Words within the top `word_pool` of a discounted topic are removed.
    pub word_pool: usize,
    /// The adversary's guess at ε1, needed to threshold the re-inferred
    /// intention.
    pub eps1_guess: f64,
}

impl TermEliminationAttack {
    /// Creates the attack with the given aggressiveness.
    pub fn new(
        model: Arc<LdaModel>,
        topics_to_discount: usize,
        word_pool: usize,
        eps1_guess: f64,
    ) -> Self {
        Self {
            belief: BeliefEngine::new(model),
            topics_to_discount,
            word_pool,
            eps1_guess,
        }
    }

    /// Runs the attack: returns the intention recovered from the truncated
    /// cycle.
    pub fn recover_intention(&self, cycle: &[&[TermId]]) -> Vec<usize> {
        // Find the high-exposure topics.
        let posteriors: Vec<Vec<f64>> = cycle.iter().map(|q| self.belief.posterior(q)).collect();
        let boosts = self.belief.cycle_boost(&posteriors);
        let mut order: Vec<usize> = (0..boosts.len()).collect();
        order.sort_by(|&a, &b| boosts[b].partial_cmp(&boosts[a]).expect("finite"));
        let discounted: Vec<usize> = order.into_iter().take(self.topics_to_discount).collect();
        // Collect the words to eliminate.
        let mut banned: std::collections::HashSet<TermId> = std::collections::HashSet::new();
        for &t in &discounted {
            for (w, _) in self.belief.model().top_words(t, self.word_pool) {
                banned.insert(w);
            }
        }
        // Truncate the cycle and re-infer.
        let truncated: Vec<Vec<TermId>> = cycle
            .iter()
            .map(|q| {
                q.iter()
                    .copied()
                    .filter(|w| !banned.contains(w))
                    .collect::<Vec<TermId>>()
            })
            .collect();
        let refs: Vec<&[TermId]> = truncated.iter().map(|q| q.as_slice()).collect();
        let posteriors: Vec<Vec<f64>> = refs.iter().map(|q| self.belief.posterior(q)).collect();
        let boosts = self.belief.cycle_boost(&posteriors);
        boosts
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b > self.eps1_guess)
            .map(|(t, _)| t)
            .collect()
    }
}

/// Attack 4: probing/replay — the adversary treats each query of the
/// cycle as the candidate user query, re-runs the (public) ghost
/// generation algorithm with his own randomness, and checks how well the
/// regenerated ghosts match the remaining queries. Because masking topics
/// and ghost words are drawn at random, replays do not reproduce the
/// observed cycle, and the match signal carries no information.
pub struct ProbingAttack {
    model: Arc<LdaModel>,
    requirement: PrivacyRequirement,
    config: GhostConfig,
    /// Replays per candidate (averaging out the adversary's own RNG).
    pub replays: usize,
}

impl ProbingAttack {
    /// Creates the attack; the adversary knows the algorithm and a guess
    /// of the thresholds, but not the client's seed.
    pub fn new(model: Arc<LdaModel>, requirement: PrivacyRequirement, replays: usize) -> Self {
        Self {
            model,
            requirement,
            config: GhostConfig::default(),
            replays,
        }
    }

    /// Similarity between a regenerated cycle and the observed remainder:
    /// mean best Jaccard overlap of token sets.
    fn replay_similarity(&self, regenerated: &[Vec<TermId>], observed: &[&[TermId]]) -> f64 {
        if regenerated.is_empty() || observed.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for r in regenerated {
            let rs: std::collections::HashSet<TermId> = r.iter().copied().collect();
            let best = observed
                .iter()
                .map(|o| {
                    let os: std::collections::HashSet<TermId> = o.iter().copied().collect();
                    let inter = rs.intersection(&os).count() as f64;
                    let union = rs.union(&os).count() as f64;
                    if union == 0.0 {
                        0.0
                    } else {
                        inter / union
                    }
                })
                .fold(0.0, f64::max);
            total += best;
        }
        total / regenerated.len() as f64
    }

    /// Guesses the genuine query as the candidate whose replayed ghosts
    /// best match the rest of the cycle.
    pub fn guess_genuine(&self, cycle: &[&[TermId]]) -> usize {
        let mut rng = StdRng::seed_from_u64(0xADE5A);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, candidate) in cycle.iter().enumerate() {
            let observed: Vec<&[TermId]> = cycle
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| *q)
                .collect();
            let mut score = 0.0;
            for _ in 0..self.replays.max(1) {
                let generator = GhostGenerator::new(
                    BeliefEngine::new(self.model.clone()),
                    self.requirement,
                    GhostConfig {
                        seed: rng.gen(),
                        ..self.config.clone()
                    },
                );
                let replay = generator.generate(candidate);
                let ghosts: Vec<Vec<TermId>> = replay
                    .cycle
                    .iter()
                    .filter(|q| !q.is_genuine)
                    .map(|q| q.tokens.clone())
                    .collect();
                score += self.replay_similarity(&ghosts, &observed);
            }
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_lda::{LdaConfig, LdaTrainer};

    fn trained_model() -> Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            docs.push((0..40).map(|i| base + (i % 8)).collect::<Vec<TermId>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        Arc::new(LdaTrainer::train(
            &refs,
            32,
            LdaConfig {
                iterations: 80,
                alpha: Some(0.3),
                ..LdaConfig::with_topics(4)
            },
        ))
    }

    #[test]
    fn coherence_attack_beats_random_ghosts() {
        let model = trained_model();
        let attack = CoherenceAttack::new(model.clone());
        // Cycle: a topical user query among random-jumble ghosts.
        let user: Vec<TermId> = vec![0, 1, 2, 3];
        let ghost1: Vec<TermId> = vec![0, 9, 17, 25]; // one word per block
        let ghost2: Vec<TermId> = vec![5, 12, 20, 30];
        let cycle: Vec<&[TermId]> = vec![&ghost1, &user, &ghost2];
        assert_eq!(attack.guess_genuine(&cycle), 1);
        let scores = attack.scores(&cycle);
        assert!(scores[1] > scores[0] && scores[1] > scores[2]);
    }

    #[test]
    fn coherence_attack_cannot_separate_coherent_ghosts() {
        let model = trained_model();
        let attack = CoherenceAttack::new(model.clone());
        // All queries coherent (each from one block).
        let q0: Vec<TermId> = vec![0, 1, 2, 3];
        let q1: Vec<TermId> = vec![8, 9, 10, 11];
        let q2: Vec<TermId> = vec![16, 17, 18, 19];
        let cycle: Vec<&[TermId]> = vec![&q0, &q1, &q2];
        let scores = attack.scores(&cycle);
        // No score dominates: max/min within a small factor.
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 5.0,
            "coherent queries should look alike: {scores:?}"
        );
    }

    #[test]
    fn exposure_attack_recovers_unprotected_intention() {
        let model = trained_model();
        let attack = ExposureRankAttack::new(model.clone(), 1);
        let user: Vec<TermId> = vec![0, 1, 2, 3];
        let cycle: Vec<&[TermId]> = vec![&user];
        let guess = attack.guess_intention(&cycle);
        // Unprotected: the top topic is the genuine one.
        let belief = BeliefEngine::new(model.clone());
        let boosts = belief.boost(&user);
        let true_top = (0..4)
            .max_by(|&a, &b| boosts[a].partial_cmp(&boosts[b]).unwrap())
            .unwrap();
        assert_eq!(guess, vec![true_top]);
    }

    #[test]
    fn term_elimination_runs_and_returns_topics() {
        let model = trained_model();
        let attack = TermEliminationAttack::new(model.clone(), 1, 8, 0.05);
        let user: Vec<TermId> = vec![0, 1, 2, 3];
        let ghost: Vec<TermId> = vec![8, 9, 10, 11];
        let cycle: Vec<&[TermId]> = vec![&user, &ghost];
        let recovered = attack.recover_intention(&cycle);
        for &t in &recovered {
            assert!(t < 4);
        }
    }

    #[test]
    fn probing_attack_runs() {
        let model = trained_model();
        let attack = ProbingAttack::new(
            model.clone(),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            1,
        );
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.05).unwrap(),
            GhostConfig::default(),
        );
        let result = generator.generate(&[0, 1, 2, 3]);
        let cycle = result.cycle_tokens();
        let guess = attack.guess_genuine(&cycle);
        assert!(guess < cycle.len());
    }
}
