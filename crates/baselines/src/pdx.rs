//! The PDX baseline: query embellishment with decoy terms.
//!
//! Re-implements the scheme of Pang, Ding & Xiao (VLDB 2010) — the paper's
//! reference \[11\], denoted "PDX" in its evaluation (Section V-C). Each user
//! query is *embellished* in place with decoy terms that (a) match the
//! genuine terms in specificity (similar IDF) and (b) are semantically
//! associated with each other (drawn along thesaurus edges), so the decoys
//! point to plausible alternative topics.
//!
//! PDX needs a modified engine (homomorphic scoring over genuine terms
//! only) to preserve result quality; here only the *embellished query's
//! topical exposure* matters, which is what Figures 4 and 5 measure.

use crate::thesaurus::Thesaurus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tsearch_text::TermId;

/// PDX parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdxConfig {
    /// Query expansion factor: `|qe| / |qu|` (the paper sweeps 2–16×).
    pub expansion_factor: usize,
    /// Relative IDF band for specificity matching: a decoy for a genuine
    /// term with idf `x` must have idf in `[x·(1−band), x·(1+band)]`.
    pub idf_band: f64,
    /// RNG seed (combined with query content).
    pub seed: u64,
}

impl Default for PdxConfig {
    fn default() -> Self {
        Self {
            expansion_factor: 4,
            idf_band: 0.25,
            seed: 0x9D_0C,
        }
    }
}

/// The PDX query embellisher.
pub struct PdxEmbellisher<'t> {
    thesaurus: &'t Thesaurus,
    /// Per-term IDF values (index = term id).
    idfs: Vec<f64>,
    /// Term ids sorted by IDF, for banded candidate lookup.
    by_idf: Vec<TermId>,
    config: PdxConfig,
}

impl<'t> PdxEmbellisher<'t> {
    /// Creates an embellisher from a thesaurus and per-term IDF values.
    pub fn new(thesaurus: &'t Thesaurus, idfs: Vec<f64>, config: PdxConfig) -> Self {
        assert!(config.expansion_factor >= 1, "expansion factor >= 1");
        assert_eq!(thesaurus.vocab_size(), idfs.len(), "idf/vocab mismatch");
        let mut by_idf: Vec<TermId> = (0..idfs.len() as TermId).collect();
        by_idf.sort_by(|&a, &b| {
            idfs[a as usize]
                .partial_cmp(&idfs[b as usize])
                .expect("finite idf")
        });
        Self {
            thesaurus,
            idfs,
            by_idf,
            config,
        }
    }

    /// Embellishes `user_tokens`, returning the full embellished query
    /// `qe` (genuine terms plus decoys, shuffled).
    pub fn embellish(&self, user_tokens: &[TermId]) -> EmbellishedQuery {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ token_hash(user_tokens));
        let decoys_needed = user_tokens
            .len()
            .saturating_mul(self.config.expansion_factor.saturating_sub(1));
        let genuine: HashSet<TermId> = user_tokens.iter().copied().collect();
        let mut decoys: Vec<TermId> = Vec::with_capacity(decoys_needed);
        let mut used: HashSet<TermId> = genuine.clone();
        // Anchor-and-grow: pick an anchor decoy in the IDF band of a
        // genuine term, then extend along thesaurus edges so the decoy set
        // stays coherent; start a new anchor when a chain dies out.
        let mut chain_tail: Option<TermId> = None;
        let mut gi = 0usize;
        let mut stall = 0usize;
        while decoys.len() < decoys_needed && stall < decoys_needed * 20 + 50 {
            stall += 1;
            let target = user_tokens[gi % user_tokens.len()];
            gi += 1;
            let target_idf = self.idfs[target as usize];
            let pick = match chain_tail {
                Some(tail) => self.pick_neighbor(tail, target_idf, &used, &mut rng),
                None => None,
            };
            let pick = pick.or_else(|| self.pick_in_band(target_idf, &used, &mut rng));
            match pick {
                Some(d) => {
                    used.insert(d);
                    decoys.push(d);
                    chain_tail = Some(d);
                }
                None => {
                    chain_tail = None;
                }
            }
        }
        let mut tokens: Vec<TermId> = user_tokens.to_vec();
        tokens.extend_from_slice(&decoys);
        shuffle(&mut tokens, &mut rng);
        EmbellishedQuery {
            tokens,
            genuine: user_tokens.to_vec(),
            decoys,
        }
    }

    /// Tries to pick an unused thesaurus neighbor of `tail` inside the IDF
    /// band of `target_idf`.
    fn pick_neighbor(
        &self,
        tail: TermId,
        target_idf: f64,
        used: &HashSet<TermId>,
        rng: &mut StdRng,
    ) -> Option<TermId> {
        let candidates: Vec<TermId> = self
            .thesaurus
            .neighbors(tail)
            .iter()
            .map(|&(t, _)| t)
            .filter(|t| !used.contains(t) && self.in_band(*t, target_idf))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }

    /// Picks a random unused term whose IDF falls in the band.
    fn pick_in_band(
        &self,
        target_idf: f64,
        used: &HashSet<TermId>,
        rng: &mut StdRng,
    ) -> Option<TermId> {
        let (lo, hi) = self.band(target_idf);
        // Binary-search the idf-sorted order for the band borders.
        let start = self.by_idf.partition_point(|&t| self.idfs[t as usize] < lo);
        let end = self
            .by_idf
            .partition_point(|&t| self.idfs[t as usize] <= hi);
        if start >= end {
            return None;
        }
        // Rejection-sample inside the band.
        for _ in 0..32 {
            let t = self.by_idf[rng.gen_range(start..end)];
            if !used.contains(&t) {
                return Some(t);
            }
        }
        self.by_idf[start..end]
            .iter()
            .copied()
            .find(|t| !used.contains(t))
    }

    fn band(&self, idf: f64) -> (f64, f64) {
        let b = self.config.idf_band;
        (idf * (1.0 - b), idf * (1.0 + b))
    }

    fn in_band(&self, term: TermId, target_idf: f64) -> bool {
        let (lo, hi) = self.band(target_idf);
        let idf = self.idfs[term as usize];
        idf >= lo && idf <= hi
    }
}

/// An embellished query with its ground-truth decomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbellishedQuery {
    /// The full embellished token bag `qe` (shuffled).
    pub tokens: Vec<TermId>,
    /// The genuine terms (evaluation ground truth).
    pub genuine: Vec<TermId>,
    /// The decoy terms (evaluation ground truth).
    pub decoys: Vec<TermId>,
}

impl EmbellishedQuery {
    /// Achieved expansion factor.
    pub fn expansion(&self) -> f64 {
        if self.genuine.is_empty() {
            0.0
        } else {
            self.tokens.len() as f64 / self.genuine.len() as f64
        }
    }
}

fn token_hash(tokens: &[TermId]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    tokens.hash(&mut h);
    h.finish()
}

fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thesaurus::ThesaurusConfig;

    /// Six-block corpus: words 6k..6k+6 co-occur; idf uniform by design.
    fn fixture() -> (Thesaurus, Vec<f64>) {
        let mut docs = Vec::new();
        for d in 0..120u32 {
            let base = (d % 6) * 6;
            docs.push((0..18).map(|i| base + (i % 6)).collect::<Vec<TermId>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let thesaurus = Thesaurus::build(&refs, 36, ThesaurusConfig::default());
        // All terms appear in 20 of 120 docs -> equal idf.
        let idfs = vec![(120f64 / 20f64).ln(); 36];
        (thesaurus, idfs)
    }

    #[test]
    fn embellishment_hits_expansion_factor() {
        let (thesaurus, idfs) = fixture();
        for factor in [2usize, 4, 8] {
            let pdx = PdxEmbellisher::new(
                &thesaurus,
                idfs.clone(),
                PdxConfig {
                    expansion_factor: factor,
                    ..PdxConfig::default()
                },
            );
            let qe = pdx.embellish(&[0, 1, 2]);
            assert_eq!(qe.genuine, vec![0, 1, 2]);
            assert_eq!(qe.decoys.len(), 3 * (factor - 1));
            assert_eq!(qe.tokens.len(), 3 * factor);
            assert!((qe.expansion() - factor as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn decoys_exclude_genuine_terms() {
        let (thesaurus, idfs) = fixture();
        let pdx = PdxEmbellisher::new(&thesaurus, idfs, PdxConfig::default());
        let qe = pdx.embellish(&[0, 1, 2, 3]);
        for d in &qe.decoys {
            assert!(!qe.genuine.contains(d), "decoy {d} is genuine");
        }
        // No duplicate decoys.
        let set: HashSet<_> = qe.decoys.iter().collect();
        assert_eq!(set.len(), qe.decoys.len());
    }

    #[test]
    fn embellishment_is_deterministic() {
        let (thesaurus, idfs) = fixture();
        let pdx = PdxEmbellisher::new(&thesaurus, idfs, PdxConfig::default());
        let a = pdx.embellish(&[6, 7, 8]);
        let b = pdx.embellish(&[6, 7, 8]);
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    fn decoys_respect_idf_band() {
        let (thesaurus, _) = fixture();
        // Give half the vocabulary a very different idf.
        let mut idfs = vec![2.0f64; 36];
        idfs[18..36].iter_mut().for_each(|x| *x = 8.0);
        let pdx = PdxEmbellisher::new(
            &thesaurus,
            idfs.clone(),
            PdxConfig {
                expansion_factor: 3,
                idf_band: 0.2,
                ..PdxConfig::default()
            },
        );
        let qe = pdx.embellish(&[0, 1]); // genuine terms have idf 2.0
        for &d in &qe.decoys {
            assert!(
                (idfs[d as usize] - 2.0).abs() < 2.0 * 0.2 + 1e-9,
                "decoy {d} idf {} outside band",
                idfs[d as usize]
            );
        }
    }

    #[test]
    fn expansion_factor_one_adds_nothing() {
        let (thesaurus, idfs) = fixture();
        let pdx = PdxEmbellisher::new(
            &thesaurus,
            idfs,
            PdxConfig {
                expansion_factor: 1,
                ..PdxConfig::default()
            },
        );
        let qe = pdx.embellish(&[0, 1]);
        assert!(qe.decoys.is_empty());
        let mut sorted = qe.tokens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
