//! Scenario `churn`: tenant join/leave storms.
//!
//! Waves of tenants join, plan paced cycles that drain on the shared
//! per-shard scheduler queues, then half of them leave — while the
//! fleet keeps serving. The invariants are the paper's per-cycle and
//! per-trace privacy guarantees, asserted **throughout** the storm, not
//! just at steady state:
//!
//! - every cycle leaves the intention either out-boosted by a decoy
//!   topic (`exposure ≤ mask_level`) or negligibly boosted
//!   (`exposure ≤ ε2`) — it never stands out — and satisfied cycles
//!   (Definition 4: every intention boost ≤ ε2) actually occur
//!   throughout the storm;
//! - every drain resolves every planned submission (no outcome lost to
//!   churn);
//! - every departing tenant's closing accounting is complete and
//!   consistent (`cycles > 0`, mean exposure ≤ mean mask level).
//!
//! [`run_fleet`] is the reusable core: the adversary-collusion
//! integration test drives it with ≥64 sessions and then runs
//! `merge_shard_logs` + the naive-Bayes classifier over the ground
//! truth it returns.

use super::{finish, fleet_manager, sharded_tier, ScenarioReport, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use crate::obsbench;
use std::sync::Arc;
use std::time::Instant;
use toppriv_core::CycleResult;
use toppriv_obs::InvariantBlock;
use toppriv_service::{CycleScheduler, GhostPlanner, PlannedQuery, PlannerConfig, SessionManager};
use tsearch_corpus::BenchmarkQuery;

/// Churn storm shape.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Tenants joining per wave.
    pub join_per_wave: usize,
    /// Waves (each wave: join storm → load → leave storm).
    pub waves: usize,
    /// Cycles each open session plans per wave.
    pub cycles_per_session: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            join_per_wave: 8,
            waves: 3,
            cycles_per_session: 2,
        }
    }
}

/// Everything the churn storm produced, for downstream adversary
/// evaluation: the manager (its tier holds the per-shard query logs the
/// colluding shards merge), the ground-truth cycles in plan order, and
/// the per-cycle true topics.
pub struct ChurnArtifacts {
    /// The fleet, still holding the surviving sessions.
    pub manager: Arc<SessionManager>,
    /// Ground-truth cycle reports, in plan order.
    pub cycles: Vec<CycleResult>,
    /// True topic of each cycle's genuine query.
    pub truths: Vec<usize>,
    /// Invariant verdicts accumulated through the storm.
    pub invariants: InvariantBlock,
    /// Drained submissions per wall-clock second.
    pub qps: f64,
    /// Total submissions drained.
    pub drained: usize,
    /// Tenants that joined over the whole storm.
    pub joined: usize,
    /// Tenants that left (with verified closing accounting).
    pub left: usize,
}

/// Runs the churn storm against an existing fleet manager. The manager
/// should be freshly constructed (the scenario owns its session
/// namespace `churn-<n>`).
pub fn run_fleet(
    manager: Arc<SessionManager>,
    queries: &[BenchmarkQuery],
    cfg: &ChurnConfig,
) -> ChurnArtifacts {
    run_fleet_with(manager, queries, cfg, None)
}

/// [`run_fleet`] with the cross-session [`GhostPlanner`] enabled: every
/// cycle routes through the planner (ghost reuse + coalesced shared
/// submissions), each wave drains the planner queue, and the drain
/// accounting counts **per-subscriber** outcomes — a shared submission
/// resolves once at the engine but must surface one outcome per
/// subscribing tenant.
pub fn run_fleet_planned(
    manager: Arc<SessionManager>,
    queries: &[BenchmarkQuery],
    cfg: &ChurnConfig,
    planner_cfg: PlannerConfig,
) -> ChurnArtifacts {
    run_fleet_with(manager, queries, cfg, Some(planner_cfg))
}

fn run_fleet_with(
    manager: Arc<SessionManager>,
    queries: &[BenchmarkQuery],
    cfg: &ChurnConfig,
    planner_cfg: Option<PlannerConfig>,
) -> ChurnArtifacts {
    let planner = planner_cfg.map(|pc| GhostPlanner::with_config(manager.clone(), pc));
    assert!(!queries.is_empty(), "churn needs a workload");
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let mut inv = InvariantBlock::default();
    let mut cycles: Vec<CycleResult> = Vec::new();
    let mut truths: Vec<usize> = Vec::new();
    let mut next_tenant = 0usize;
    let mut joined = 0usize;
    let mut left = 0usize;
    let mut drained = 0usize;
    let mut drain_secs = 0.0f64;
    let mut worst_violation = f64::NEG_INFINITY;
    let mut worst_satisfied = 0.0f64;
    let mut satisfied_cycles = 0usize;
    // Sessions run the manager's defaults: the paper requirement.
    let eps2 = toppriv_core::PrivacyRequirement::paper_default().eps2;
    let mut lost: Vec<String> = Vec::new();
    let mut bad_closes: Vec<String> = Vec::new();

    for wave in 0..cfg.waves {
        // Join storm.
        for _ in 0..cfg.join_per_wave {
            manager
                .open_session(&format!("churn-{next_tenant}"))
                .expect("fresh tenant id");
            next_tenant += 1;
            joined += 1;
        }
        // Load: every open session plans cycles; the ground truth is
        // kept for the colluding-shards evaluation.
        let ids = manager.session_ids();
        let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
        for (s, id) in ids.iter().enumerate() {
            for c in 0..cfg.cycles_per_session {
                let q = &queries[(wave * 7 + s * 3 + c) % queries.len()];
                let report = match &planner {
                    Some(planner) => planner
                        .plan_cycle(id, &q.tokens, TOP_K)
                        .expect("session is open"),
                    None => {
                        let (report, plan) = manager
                            .plan_cycle_with_report(id, &q.tokens, TOP_K)
                            .expect("session is open");
                        plans.push(plan);
                        report
                    }
                };
                let m = &report.metrics;
                worst_violation = worst_violation.max(super::masking_violation(m, eps2));
                if report.satisfied && !report.intention.is_empty() {
                    satisfied_cycles += 1;
                    worst_satisfied = worst_satisfied.max(m.exposure);
                }
                cycles.push(report);
                truths.push(q.target_topics[0]);
            }
        }
        let queue = match &planner {
            Some(planner) => planner.take_queue(),
            None => CycleScheduler::merge(plans),
        };
        // With the planner on, a coalesced entry drains one outcome per
        // subscribing tenant; without it every fanout is 1.
        let expected: usize = queue.iter().map(|p| p.fanout()).sum();
        let t0 = Instant::now();
        match scheduler.try_drain(queue) {
            Ok(outcomes) => {
                drained += outcomes.len();
                if outcomes.len() != expected {
                    lost.push(format!(
                        "wave {wave}: {} of {expected} drained",
                        outcomes.len()
                    ));
                }
            }
            Err(e) => lost.push(format!("wave {wave}: {e}")),
        }
        drain_secs += t0.elapsed().as_secs_f64();
        // Leave storm: the older half of the open tenants departs;
        // their closing accounting must be complete and consistent.
        let ids = manager.session_ids();
        for id in ids.iter().take(ids.len() / 2) {
            let m = manager.close_session(id).expect("session is open");
            left += 1;
            if m.cycles == 0 || m.mean_exposure > m.mean_mask_level + 1e-9 {
                bad_closes.push(format!(
                    "{id}: cycles {} exposure {:.4} mask {:.4}",
                    m.cycles, m.mean_exposure, m.mean_mask_level
                ));
            }
        }
    }

    inv.check(
        "intention_masked_or_negligible",
        format!(
            "{} cycles across {} waves ({satisfied_cycles} satisfied); worst \
             min(exposure − mask_level, exposure − ε2) = {:.3e}",
            cycles.len(),
            cfg.waves,
            worst_violation
        ),
        satisfied_cycles > 0 && worst_violation <= 1e-9,
    );
    inv.check(
        "satisfied_cycles_within_eps2",
        format!("worst satisfied-cycle exposure {worst_satisfied:.4} vs ε2 {eps2}"),
        worst_satisfied <= eps2 + 1e-9,
    );
    inv.check(
        "all_submissions_drained",
        if lost.is_empty() {
            format!("{drained} submissions drained across {} waves", cfg.waves)
        } else {
            lost.join("; ")
        },
        lost.is_empty(),
    );
    inv.check(
        "departing_accounting_consistent",
        if bad_closes.is_empty() {
            format!("{left} departures, all with cycles > 0 and mean exposure ≤ mean mask")
        } else {
            bad_closes.join("; ")
        },
        bad_closes.is_empty(),
    );

    ChurnArtifacts {
        manager,
        cycles,
        truths,
        invariants: inv,
        qps: drained as f64 / drain_secs.max(1e-9),
        drained,
        joined,
        left,
    }
}

/// Runs the churn scenario on the experiment context.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    let manager = fleet_manager(ctx, sharded_tier(ctx, SHARDS));
    obsbench::reset_engine_stages();
    let cfg = ChurnConfig::default();
    let art = run_fleet(manager, ctx.sweep_queries(), &cfg);
    let notes = format!(
        "{} waves x {} joins, {} cycles/session/wave, {SHARDS} shards, {WORKERS} workers; \
         {} joined / {} left / {} survived; {} submissions",
        cfg.waves,
        cfg.join_per_wave,
        cfg.cycles_per_session,
        art.joined,
        art.left,
        art.manager.session_count(),
        art.drained
    );
    let report = finish(
        "churn",
        &art.manager,
        art.qps,
        notes,
        art.invariants.clone(),
    );
    art.manager.tier().clear_query_logs();
    report
}
