//! Online adversary-view estimator: live posterior-drift gauges.
//!
//! The offline harness ([`crate::logview`], the classifier and Section
//! IV-D attacks) evaluates what a colluding engine-side adversary learns
//! *after the fact*. [`OnlineLogEstimator`] closes the loop with live
//! serving: it cheaply samples the merged shard query logs on a cadence
//! (an audit tick, a drain boundary), computes the adversary's
//! boost-over-prior view of the most recent window, and publishes it as
//! gauges next to the service's own privacy gauges — so a fleet operator
//! watches the *attack model's* view drift in the same dashboard that
//! shows the tenants' exposure headroom:
//!
//! - `adversary_top_boost`: the largest topic boost the adversary infers
//!   from the current window (micro-units). Under the TopPriv guarantee
//!   this is decoy mass, and the interesting signal is *drift*;
//! - `adversary_posterior_drift`: L∞ distance between consecutive
//!   sampled boost vectors (micro-units) — a persistently rising value
//!   means the adversary's view is stabilizing on something;
//! - `adversary_window_len`: queries in the sampled window.
//!
//! Each sample is O(window × topics): one posterior inference per
//! window query, no allocation proportional to the full log.

use std::sync::{Arc, Mutex};
use toppriv_core::BeliefEngine;
use toppriv_obs::MetricsRegistry;
use tsearch_lda::LdaModel;
use tsearch_search::LoggedQuery;

use crate::logview::merge_shard_logs;

/// Metric name: the adversary's largest inferred topic boost over the
/// sampled window (micro-units).
pub const M_ADV_TOP_BOOST: &str = "adversary_top_boost";
/// Metric name: L∞ drift between consecutive sampled boost vectors
/// (micro-units).
pub const M_ADV_DRIFT: &str = "adversary_posterior_drift";
/// Metric name: queries in the sampled window.
pub const M_ADV_WINDOW: &str = "adversary_window_len";

/// Fixed-point scale for the adversary gauges (`value × 1e6`).
pub const ADV_GAUGE_MICRO: f64 = 1e6;

/// Estimator tuning.
#[derive(Debug, Clone, Copy)]
pub struct OnlineEstimatorConfig {
    /// Tail-window width in queries (the adversary's working set per
    /// sample).
    pub window: usize,
}

impl Default for OnlineEstimatorConfig {
    fn default() -> Self {
        OnlineEstimatorConfig { window: 64 }
    }
}

/// One published sample of the adversary's live view.
#[derive(Debug, Clone)]
pub struct DriftSample {
    /// Queries in the sampled window.
    pub window_len: usize,
    /// Topic with the largest inferred boost (0 when the window is
    /// empty).
    pub top_topic: usize,
    /// That topic's boost over the prior.
    pub top_boost: f64,
    /// L∞ distance to the previous sample's boost vector (0.0 on the
    /// first sample).
    pub drift: f64,
}

/// The live estimator: a [`BeliefEngine`] over the adversary's model
/// plus the previous sample, for drift.
pub struct OnlineLogEstimator {
    belief: BeliefEngine,
    config: OnlineEstimatorConfig,
    prev_boosts: Mutex<Option<Vec<f64>>>,
}

impl OnlineLogEstimator {
    /// An estimator using `model` as the adversary's topic model (in the
    /// threat model the engine-side adversary holds the same public
    /// model the service does).
    pub fn new(model: Arc<LdaModel>, config: OnlineEstimatorConfig) -> Self {
        OnlineLogEstimator {
            belief: BeliefEngine::new(model),
            config,
            prev_boosts: Mutex::new(None),
        }
    }

    /// Samples the colluding-adversary view of `shard_logs`: merges the
    /// per-shard logs (ordinal union, exactly what colluding shards
    /// reconstruct), infers the boost vector of the most recent
    /// `window` queries, publishes the gauges into `registry`, and
    /// returns the sample.
    pub fn sample(
        &self,
        shard_logs: &[Vec<LoggedQuery>],
        registry: &MetricsRegistry,
    ) -> DriftSample {
        let merged = merge_shard_logs(shard_logs);
        let start = merged.len().saturating_sub(self.config.window);
        let window = &merged[start..];
        let posteriors: Vec<Vec<f64>> = window
            .iter()
            .map(|q| self.belief.posterior(&q.tokens))
            .collect();
        let boosts = if posteriors.is_empty() {
            vec![0.0; self.belief.num_topics()]
        } else {
            self.belief.cycle_boost(&posteriors)
        };
        let (top_topic, top_boost) =
            boosts
                .iter()
                .copied()
                .enumerate()
                .fold((0usize, f64::NEG_INFINITY), |best, (t, b)| {
                    if b > best.1 {
                        (t, b)
                    } else {
                        best
                    }
                });
        let top_boost = if top_boost.is_finite() {
            top_boost
        } else {
            0.0
        };
        let drift = {
            let mut prev = self
                .prev_boosts
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let d = match prev.as_ref() {
                Some(old) if old.len() == boosts.len() => boosts
                    .iter()
                    .zip(old)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max),
                _ => 0.0,
            };
            *prev = Some(boosts);
            d
        };
        registry
            .gauge(M_ADV_TOP_BOOST, &[])
            .set((top_boost * ADV_GAUGE_MICRO).round() as i64);
        registry
            .gauge(M_ADV_DRIFT, &[])
            .set((drift * ADV_GAUGE_MICRO).round() as i64);
        registry.gauge(M_ADV_WINDOW, &[]).set(window.len() as i64);
        DriftSample {
            window_len: window.len(),
            top_topic,
            top_boost,
            drift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_lda::{LdaConfig, LdaTrainer};
    use tsearch_text::TermId;

    fn model() -> Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            docs.push((0..40).map(|i| base + (i % 8)).collect::<Vec<TermId>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        Arc::new(LdaTrainer::train(
            &refs,
            48,
            LdaConfig {
                iterations: 40,
                ..LdaConfig::with_topics(4)
            },
        ))
    }

    fn logged(ordinal: u64, tokens: Vec<u32>) -> LoggedQuery {
        LoggedQuery {
            ordinal,
            text: String::new(),
            tokens,
        }
    }

    #[test]
    fn empty_logs_sample_cleanly() {
        let est = OnlineLogEstimator::new(model(), OnlineEstimatorConfig::default());
        let reg = MetricsRegistry::new();
        let s = est.sample(&[Vec::new(), Vec::new()], &reg);
        assert_eq!(s.window_len, 0);
        assert_eq!(s.drift, 0.0);
        assert_eq!(reg.gauge(M_ADV_WINDOW, &[]).get(), 0);
    }

    #[test]
    fn drift_tracks_changing_windows() {
        let est = OnlineLogEstimator::new(model(), OnlineEstimatorConfig { window: 4 });
        let reg = MetricsRegistry::new();
        let logs_a = vec![vec![logged(0, vec![0, 1]), logged(1, vec![2, 3])]];
        let first = est.sample(&logs_a, &reg);
        assert_eq!(first.drift, 0.0, "first sample has no reference");
        assert_eq!(first.window_len, 2);
        // A shifted workload moves the inferred boost vector.
        let logs_b = vec![vec![
            logged(0, vec![0, 1]),
            logged(1, vec![2, 3]),
            logged(2, vec![40, 41, 42]),
            logged(3, vec![40, 41, 42]),
            logged(4, vec![40, 41, 42]),
            logged(5, vec![40, 41, 42]),
        ]];
        let second = est.sample(&logs_b, &reg);
        assert_eq!(second.window_len, 4, "window caps the adversary view");
        assert!(second.drift >= 0.0);
        assert_eq!(
            reg.gauge(M_ADV_TOP_BOOST, &[]).get(),
            (second.top_boost * 1e6).round() as i64,
            "top-boost gauge publishes the sample in micro-units"
        );
        // An identical window drifts by exactly zero.
        let third = est.sample(&logs_b, &reg);
        assert_eq!(third.drift, 0.0);
        assert_eq!(reg.gauge(M_ADV_DRIFT, &[]).get(), 0);
    }

    #[test]
    fn colluding_shards_merge_before_sampling() {
        let est = OnlineLogEstimator::new(model(), OnlineEstimatorConfig { window: 8 });
        let reg = MetricsRegistry::new();
        // The same ordinal split across shards is one reconstructed query.
        let shard0 = vec![logged(0, vec![0]), logged(2, vec![4])];
        let shard1 = vec![logged(1, vec![2]), logged(2, vec![5])];
        let s = est.sample(&[shard0, shard1], &reg);
        assert_eq!(s.window_len, 3);
    }
}
