//! Session spill/restore for crash recovery.
//!
//! A fleet that never restarts still loses machines. [`SessionState`]
//! is the complete per-tenant client state — privacy requirement, ghost
//! and pacing configuration, the [`toppriv_core::SessionTracker`]
//! posterior history, the running Equation-2 trace sums, and every
//! aggregate counter — in a **bit-exact binary codec**: all `f64`s are
//! spilled as raw little-endian IEEE-754 bytes, so restored exposure
//! accounting is `==`-identical to the pre-crash accounting, not merely
//! close after a decimal round-trip.
//!
//! The codec composes with `tsearch-store`'s CRC-checked container:
//! [`seal_session_state`] wraps the encoding under
//! [`tsearch_store::kind::SESSION_STATE`], and [`unseal_session_state`]
//! verifies the checksum before decoding, so a corrupt spill surfaces
//! as an error instead of silently wrong accounting.
//!
//! What is deliberately **not** spilled: the model (shared fleet state,
//! rebuilt or reloaded on its own path), the fleet secret ghost seed
//! (the restoring manager must already hold it — spilling a secret next
//! to the data it protects would defeat it), and the pacing RNG's
//! internal position (the pacer restarts from its config seed;
//! [`toppriv_core::PacingScheduler::resume_from`] carries the cycle-id
//! counter so restored sessions keep globally unique cycle ids).
//! Bit-identical restored *accounting* therefore requires restoring
//! under the same fleet seed and an identical model — exactly the crash
//! recovery contract, and what the recovery scenario asserts.

use crate::session::SessionConfig;
use toppriv_core::{GhostConfig, PacingConfig, PacingStrategy, PrivacyRequirement, TermSelection};
use toppriv_obs::{AuditEvent, AuditSeverity};
use tsearch_search::LoggedQuery;
use tsearch_store::{kind, seal, unseal_kind, StoreError};

/// Codec version stamped into every spill.
pub const SESSION_STATE_VERSION: u32 = 1;

/// Magic bytes opening a [`SessionState`] payload (inside the sealed
/// container).
pub const SESSION_STATE_MAGIC: [u8; 4] = *b"TPSS";

/// The complete spilled state of one session.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Session id (the manager's key).
    pub id: String,
    /// The tenant's configuration (requirement, ghost, pacing, flags).
    pub config: SessionConfig,
    /// Model epoch the session last generated against (informational;
    /// restore rebinds to the restoring manager's current model).
    pub model_epoch: u64,
    /// Tracker posterior history (empty unless `history_aware`).
    pub posteriors: Vec<Vec<f64>>,
    /// Tracker ground-truth genuine indices.
    pub genuine: Vec<usize>,
    /// Session-local simulated clock.
    pub clock_secs: f64,
    /// Union of certified intention topics.
    pub intention_union: Vec<usize>,
    /// Running per-topic posterior sum (Equation-2 trace accounting).
    pub posterior_sum: Vec<f64>,
    /// Queries accumulated into `posterior_sum`.
    pub posterior_count: u64,
    /// The pacer's next cycle id.
    pub next_cycle_id: u64,
    /// Cycles formulated.
    pub cycles: u64,
    /// Queries emitted (genuine + ghosts).
    pub queries_emitted: u64,
    /// Sum of cycle lengths.
    pub sum_cycle_len: f64,
    /// Sum of per-cycle exposures.
    pub sum_exposure: f64,
    /// Worst per-cycle exposure.
    pub worst_exposure: f64,
    /// Sum of per-cycle mask levels.
    pub sum_mask: f64,
    /// Cycles that satisfied the requirement.
    pub satisfied: u64,
}

/// Spill/restore failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The sealed container failed its integrity checks.
    Store(StoreError),
    /// The payload decoded from a valid container is malformed.
    Malformed(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "session container: {e}"),
            PersistError::Malformed(m) => write!(f, "malformed session state: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

// ---------------------------------------------------------------------
// Little-endian writer/reader. f64 goes through to_le_bytes/from_bits so
// the round-trip is bitwise, not textual.

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn f64s(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }
    fn u64s(&mut self, v: impl ExactSizeIterator<Item = u64>) {
        self.u32(v.len() as u32);
        for x in v {
            self.u64(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| PersistError::Malformed("truncated payload".into()))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn len(&mut self) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        // Each element of any collection occupies at least one byte, so
        // a length beyond the remaining buffer is corrupt — reject it
        // before any allocation trusts it.
        if n > self.buf.len().saturating_sub(self.at) {
            return Err(PersistError::Malformed("length beyond payload".into()));
        }
        Ok(n)
    }
    fn bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let n = self.len()?;
        self.take(n)
    }
    fn f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        // f64s are 8 bytes each; bound-check against that stride.
        let n = self.u32()? as usize;
        if n.saturating_mul(8) > self.buf.len().saturating_sub(self.at) {
            return Err(PersistError::Malformed("length beyond payload".into()));
        }
        (0..n).map(|_| self.f64()).collect()
    }
    fn u64s(&mut self) -> Result<Vec<u64>, PersistError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(8) > self.buf.len().saturating_sub(self.at) {
            return Err(PersistError::Malformed("length beyond payload".into()));
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

fn encode_pacing_strategy(w: &mut Writer, s: &PacingStrategy) {
    match s {
        PacingStrategy::NaiveImmediate => w.u8(0),
        PacingStrategy::ShuffledBurst => w.u8(1),
        PacingStrategy::PoissonSpread {
            window_secs,
            max_genuine_delay_secs,
        } => {
            w.u8(2);
            w.f64(*window_secs);
            w.f64(*max_genuine_delay_secs);
        }
    }
}

fn decode_pacing_strategy(r: &mut Reader) -> Result<PacingStrategy, PersistError> {
    match r.u8()? {
        0 => Ok(PacingStrategy::NaiveImmediate),
        1 => Ok(PacingStrategy::ShuffledBurst),
        2 => Ok(PacingStrategy::PoissonSpread {
            window_secs: r.f64()?,
            max_genuine_delay_secs: r.f64()?,
        }),
        t => Err(PersistError::Malformed(format!(
            "unknown pacing strategy tag {t}"
        ))),
    }
}

/// Encodes a [`SessionState`] into its raw binary payload (no container
/// framing — see [`seal_session_state`] for the CRC-checked form).
pub fn encode_session_state(state: &SessionState) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(&SESSION_STATE_MAGIC);
    w.u32(SESSION_STATE_VERSION);
    w.bytes(state.id.as_bytes());
    // Config.
    w.f64(state.config.requirement.eps1);
    w.f64(state.config.requirement.eps2);
    let g = &state.config.ghost;
    w.f64(g.min_len_mult);
    w.f64(g.max_len_mult);
    w.u64(g.max_cycle_len as u64);
    w.u64(g.term_pool as u64);
    w.u8(match g.term_selection {
        TermSelection::Biased => 0,
        TermSelection::SpecificityMatched => 1,
    });
    w.u64(g.seed);
    let p = &state.config.pacing;
    encode_pacing_strategy(&mut w, &p.strategy);
    w.f64(p.burst_gap_secs);
    w.f64(p.jitter);
    w.u64(p.seed);
    w.u8(u8::from(state.config.history_aware));
    w.u64(state.config.top_k as u64);
    w.f64(state.config.think_time_secs);
    // Trace state.
    w.u64(state.model_epoch);
    w.u32(state.posteriors.len() as u32);
    for row in &state.posteriors {
        w.f64s(row);
    }
    w.u64s(state.genuine.iter().map(|&g| g as u64));
    w.f64(state.clock_secs);
    w.u64s(state.intention_union.iter().map(|&t| t as u64));
    w.f64s(&state.posterior_sum);
    w.u64(state.posterior_count);
    w.u64(state.next_cycle_id);
    // Aggregates.
    w.u64(state.cycles);
    w.u64(state.queries_emitted);
    w.f64(state.sum_cycle_len);
    w.f64(state.sum_exposure);
    w.f64(state.worst_exposure);
    w.f64(state.sum_mask);
    w.u64(state.satisfied);
    w.0
}

/// Decodes a raw [`SessionState`] payload (inverse of
/// [`encode_session_state`]).
pub fn decode_session_state(payload: &[u8]) -> Result<SessionState, PersistError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    if r.take(4)? != SESSION_STATE_MAGIC {
        return Err(PersistError::Malformed("bad magic".into()));
    }
    let version = r.u32()?;
    if version != SESSION_STATE_VERSION {
        return Err(PersistError::Malformed(format!(
            "unsupported session state version {version}"
        )));
    }
    let id = String::from_utf8(r.bytes()?.to_vec())
        .map_err(|_| PersistError::Malformed("session id is not UTF-8".into()))?;
    let eps1 = r.f64()?;
    let eps2 = r.f64()?;
    let requirement = PrivacyRequirement { eps1, eps2 };
    let ghost = GhostConfig {
        min_len_mult: r.f64()?,
        max_len_mult: r.f64()?,
        max_cycle_len: r.u64()? as usize,
        term_pool: r.u64()? as usize,
        term_selection: match r.u8()? {
            0 => TermSelection::Biased,
            1 => TermSelection::SpecificityMatched,
            t => {
                return Err(PersistError::Malformed(format!(
                    "unknown term selection tag {t}"
                )))
            }
        },
        seed: r.u64()?,
    };
    let pacing = PacingConfig {
        strategy: decode_pacing_strategy(&mut r)?,
        burst_gap_secs: r.f64()?,
        jitter: r.f64()?,
        seed: r.u64()?,
    };
    let history_aware = match r.u8()? {
        0 => false,
        1 => true,
        t => {
            return Err(PersistError::Malformed(format!(
                "bad history_aware flag {t}"
            )))
        }
    };
    let top_k = r.u64()? as usize;
    let think_time_secs = r.f64()?;
    let config = SessionConfig {
        requirement,
        ghost,
        pacing,
        history_aware,
        top_k,
        think_time_secs,
    };
    let model_epoch = r.u64()?;
    let rows = r.u32()? as usize;
    let mut posteriors = Vec::with_capacity(rows.min(1 << 16));
    for _ in 0..rows {
        posteriors.push(r.f64s()?);
    }
    let genuine: Vec<usize> = r.u64s()?.into_iter().map(|g| g as usize).collect();
    if genuine.iter().any(|&g| g >= posteriors.len()) {
        return Err(PersistError::Malformed(
            "genuine index beyond posterior history".into(),
        ));
    }
    let clock_secs = r.f64()?;
    let intention_union: Vec<usize> = r.u64s()?.into_iter().map(|t| t as usize).collect();
    let posterior_sum = r.f64s()?;
    let posterior_count = r.u64()?;
    let next_cycle_id = r.u64()?;
    let state = SessionState {
        id,
        config,
        model_epoch,
        posteriors,
        genuine,
        clock_secs,
        intention_union,
        posterior_sum,
        posterior_count,
        next_cycle_id,
        cycles: r.u64()?,
        queries_emitted: r.u64()?,
        sum_cycle_len: r.f64()?,
        sum_exposure: r.f64()?,
        worst_exposure: r.f64()?,
        sum_mask: r.f64()?,
        satisfied: r.u64()?,
    };
    if r.at != payload.len() {
        return Err(PersistError::Malformed("trailing bytes".into()));
    }
    Ok(state)
}

/// Seals one shard's query-log snapshot into a CRC-checked container
/// (kind [`kind::QUERY_LOG`]) for post-crash replay.
pub fn seal_query_log(entries: &[LoggedQuery]) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.u32(entries.len() as u32);
    for e in entries {
        w.u64(e.ordinal);
        w.bytes(e.text.as_bytes());
        w.u32(e.tokens.len() as u32);
        for &t in &e.tokens {
            w.u32(t);
        }
    }
    seal(kind::QUERY_LOG, &w.0)
}

/// Unseals one shard's query-log container (inverse of
/// [`seal_query_log`]), verifying its CRC32 and kind tag first.
pub fn unseal_query_log(container: &[u8]) -> Result<Vec<LoggedQuery>, PersistError> {
    let payload = unseal_kind(container, kind::QUERY_LOG)?;
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    let n = r.len()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let ordinal = r.u64()?;
        let text = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|_| PersistError::Malformed("query text is not UTF-8".into()))?;
        let count = r.u32()? as usize;
        if count.saturating_mul(4) > payload.len().saturating_sub(r.at) {
            return Err(PersistError::Malformed("length beyond payload".into()));
        }
        let tokens = (0..count).map(|_| r.u32()).collect::<Result<Vec<_>, _>>()?;
        entries.push(LoggedQuery {
            ordinal,
            text,
            tokens,
        });
    }
    if r.at != payload.len() {
        return Err(PersistError::Malformed("trailing bytes".into()));
    }
    Ok(entries)
}

/// Codec version stamped into every audit-journal spill.
pub const AUDIT_JOURNAL_VERSION: u32 = 1;

/// Magic bytes opening an audit-journal payload (inside the sealed
/// container).
pub const AUDIT_JOURNAL_MAGIC: [u8; 4] = *b"TPAJ";

fn severity_tag(s: AuditSeverity) -> u8 {
    match s {
        AuditSeverity::Info => 0,
        AuditSeverity::Warning => 1,
        AuditSeverity::Breach => 2,
    }
}

/// Encodes an audit-journal spill into its raw binary payload (no
/// container framing — see [`seal_audit_journal`] for the CRC-checked
/// form).
pub fn encode_audit_journal(events: &[AuditEvent]) -> Vec<u8> {
    let mut w = Writer(Vec::new());
    w.0.extend_from_slice(&AUDIT_JOURNAL_MAGIC);
    w.u32(AUDIT_JOURNAL_VERSION);
    w.u32(events.len() as u32);
    for e in events {
        w.u64(e.seq);
        w.u8(severity_tag(e.severity));
        w.bytes(e.code.as_bytes());
        w.bytes(e.tenant.as_bytes());
        w.u64(e.cycle);
        w.bytes(e.detail.as_bytes());
    }
    w.0
}

/// Decodes a raw audit-journal payload (inverse of
/// [`encode_audit_journal`]).
pub fn decode_audit_journal(payload: &[u8]) -> Result<Vec<AuditEvent>, PersistError> {
    let mut r = Reader {
        buf: payload,
        at: 0,
    };
    if r.take(4)? != AUDIT_JOURNAL_MAGIC {
        return Err(PersistError::Malformed("bad magic".into()));
    }
    let version = r.u32()?;
    if version != AUDIT_JOURNAL_VERSION {
        return Err(PersistError::Malformed(format!(
            "unsupported audit journal version {version}"
        )));
    }
    let n = r.len()?;
    let utf8 = |bytes: &[u8]| {
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Malformed("audit string is not UTF-8".into()))
    };
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = r.u64()?;
        let severity = match r.u8()? {
            0 => AuditSeverity::Info,
            1 => AuditSeverity::Warning,
            2 => AuditSeverity::Breach,
            t => {
                return Err(PersistError::Malformed(format!(
                    "unknown audit severity tag {t}"
                )))
            }
        };
        let code = utf8(r.bytes()?)?;
        let tenant = utf8(r.bytes()?)?;
        let cycle = r.u64()?;
        let detail = utf8(r.bytes()?)?;
        events.push(AuditEvent {
            seq,
            severity,
            code,
            tenant,
            cycle,
            detail,
        });
    }
    if r.at != payload.len() {
        return Err(PersistError::Malformed("trailing bytes".into()));
    }
    Ok(events)
}

/// Seals an audit-journal spill into a CRC-checked `tsearch-store`
/// container (kind [`kind::AUDIT_JOURNAL`]), so breach evidence
/// survives restarts with the same integrity guarantees as session
/// state.
pub fn seal_audit_journal(events: &[AuditEvent]) -> Vec<u8> {
    seal(kind::AUDIT_JOURNAL, &encode_audit_journal(events))
}

/// Unseals and decodes an audit-journal container, verifying its CRC32
/// and kind tag first.
pub fn unseal_audit_journal(container: &[u8]) -> Result<Vec<AuditEvent>, PersistError> {
    let payload = unseal_kind(container, kind::AUDIT_JOURNAL)?;
    decode_audit_journal(payload)
}

/// Seals a [`SessionState`] into a CRC-checked `tsearch-store`
/// container (kind [`kind::SESSION_STATE`]).
pub fn seal_session_state(state: &SessionState) -> Vec<u8> {
    seal(kind::SESSION_STATE, &encode_session_state(state))
}

/// Unseals and decodes a [`SessionState`] container, verifying its
/// CRC32 and kind tag first.
pub fn unseal_session_state(container: &[u8]) -> Result<SessionState, PersistError> {
    let payload = unseal_kind(container, kind::SESSION_STATE)?;
    decode_session_state(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionState {
        SessionState {
            id: "tenant-7".into(),
            config: SessionConfig {
                history_aware: true,
                top_k: 7,
                think_time_secs: 12.5,
                ..SessionConfig::default()
            },
            model_epoch: 3,
            posteriors: vec![vec![0.25, 0.75], vec![0.5, 0.5]],
            genuine: vec![1],
            clock_secs: 99.75,
            intention_union: vec![0, 5],
            posterior_sum: vec![0.75, 1.25],
            posterior_count: 2,
            next_cycle_id: 11,
            cycles: 4,
            queries_emitted: 17,
            sum_cycle_len: 17.0,
            sum_exposure: 0.031,
            worst_exposure: 0.012,
            sum_mask: 0.4,
            satisfied: 4,
        }
    }

    #[test]
    fn codec_roundtrips_bitwise() {
        let state = sample();
        let back = decode_session_state(&encode_session_state(&state)).unwrap();
        assert_eq!(back.id, state.id);
        assert_eq!(back.posteriors, state.posteriors);
        assert_eq!(back.genuine, state.genuine);
        assert_eq!(back.posterior_sum, state.posterior_sum);
        assert_eq!(
            back.sum_exposure.to_bits(),
            state.sum_exposure.to_bits(),
            "f64 round-trip must be bitwise"
        );
        assert_eq!(back.next_cycle_id, state.next_cycle_id);
        assert_eq!(back.config.top_k, state.config.top_k);
        assert!(back.config.history_aware);
    }

    #[test]
    fn sealed_roundtrip_and_corruption_detection() {
        let state = sample();
        let mut sealed = seal_session_state(&state);
        assert!(unseal_session_state(&sealed).is_ok());
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x40;
        assert!(matches!(
            unseal_session_state(&sealed),
            Err(PersistError::Store(_))
        ));
    }

    #[test]
    fn audit_journal_roundtrips_and_detects_corruption() {
        let events = vec![
            AuditEvent {
                seq: 0,
                severity: AuditSeverity::Info,
                code: "journal_spill".into(),
                tenant: String::new(),
                cycle: 0,
                detail: "3 event(s) sealed".into(),
            },
            AuditEvent {
                seq: 1,
                severity: AuditSeverity::Warning,
                code: "low_headroom".into(),
                tenant: "tenant-2".into(),
                cycle: 9,
                detail: "headroom 1.2e-3 below 25% of ε2".into(),
            },
            AuditEvent {
                seq: 2,
                severity: AuditSeverity::Breach,
                code: "eps2_breach".into(),
                tenant: "tenant-0".into(),
                cycle: 4,
                detail: "exposure 0.5 above mask 0.0 and ε2 0.01".into(),
            },
        ];
        let back = decode_audit_journal(&encode_audit_journal(&events)).unwrap();
        assert_eq!(back, events);
        let mut sealed = seal_audit_journal(&events);
        assert_eq!(unseal_audit_journal(&sealed).unwrap(), events);
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x10;
        assert!(matches!(
            unseal_audit_journal(&sealed),
            Err(PersistError::Store(_))
        ));
    }

    #[test]
    fn audit_journal_rejects_bad_tags() {
        let events = vec![AuditEvent {
            seq: 0,
            severity: AuditSeverity::Breach,
            code: "eps2_breach".into(),
            tenant: "t".into(),
            cycle: 1,
            detail: "d".into(),
        }];
        let mut payload = encode_audit_journal(&events);
        // Corrupt the severity tag (first byte after magic+version+count+seq).
        payload[4 + 4 + 4 + 8] = 9;
        assert!(matches!(
            decode_audit_journal(&payload),
            Err(PersistError::Malformed(_))
        ));
        assert!(matches!(
            decode_audit_journal(b"nope"),
            Err(PersistError::Malformed(_))
        ));
    }

    #[test]
    fn genuine_index_out_of_range_is_rejected() {
        let mut state = sample();
        state.genuine = vec![9];
        let err = decode_session_state(&encode_session_state(&state)).unwrap_err();
        assert!(matches!(err, PersistError::Malformed(_)));
    }
}
