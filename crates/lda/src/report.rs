//! Topic inspection reports — the machinery behind Tables II, III and IV
//! of the paper (top-20 words per topic, topic persistence across models,
//! and topic indistinctness at very small K).

use crate::model::LdaModel;
use serde::{Deserialize, Serialize};
use tsearch_text::Vocabulary;

/// A rendered topic: its top words with probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopicReport {
    /// Topic index.
    pub topic: usize,
    /// `(word, Pr(w|t))` pairs, descending.
    pub top_words: Vec<(String, f64)>,
}

/// Renders the top `n` words of `topic` using `vocab` for word strings.
pub fn topic_report(model: &LdaModel, vocab: &Vocabulary, topic: usize, n: usize) -> TopicReport {
    TopicReport {
        topic,
        top_words: model
            .top_words(topic, n)
            .into_iter()
            .map(|(w, p)| (vocab.term(w).to_string(), p))
            .collect(),
    }
}

/// Renders all topics.
pub fn all_topics(model: &LdaModel, vocab: &Vocabulary, n: usize) -> Vec<TopicReport> {
    (0..model.num_topics())
        .map(|t| topic_report(model, vocab, t, n))
        .collect()
}

/// Cosine similarity between topic `ta` of `a` and topic `tb` of `b`
/// (over the shared vocabulary; the models must have equal vocab size).
pub fn topic_cosine(a: &LdaModel, ta: usize, b: &LdaModel, tb: usize) -> f64 {
    assert_eq!(a.vocab_size(), b.vocab_size(), "vocabulary mismatch");
    let va = a.topic_word_dist(ta);
    let vb = b.topic_word_dist(tb);
    let dot: f64 = va.iter().zip(&vb).map(|(x, y)| x * y).sum();
    let na: f64 = va.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = vb.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Finds the topic of `b` most similar (cosine) to topic `ta` of `a`,
/// returning `(topic, similarity)`. This is how Table III tracks "the same
/// topic" across LDA models of different K.
pub fn best_matching_topic(a: &LdaModel, ta: usize, b: &LdaModel) -> (usize, f64) {
    let mut best = (0usize, f64::NEG_INFINITY);
    for tb in 0..b.num_topics() {
        let sim = topic_cosine(a, ta, b, tb);
        if sim > best.1 {
            best = (tb, sim);
        }
    }
    best
}

/// A distinctness score for a model's topics: the mean pairwise cosine
/// between topic-word distributions. Table IV's observation is that a
/// too-small K produces *indistinct* topics, i.e. high mean pairwise
/// similarity.
pub fn mean_pairwise_topic_similarity(model: &LdaModel) -> f64 {
    let k = model.num_topics();
    if k < 2 {
        return 0.0;
    }
    let dists: Vec<Vec<f64>> = (0..k).map(|t| model.topic_word_dist(t)).collect();
    let norms: Vec<f64> = dists
        .iter()
        .map(|v| v.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..k {
        for j in i + 1..k {
            let dot: f64 = dists[i].iter().zip(&dists[j]).map(|(x, y)| x * y).sum();
            if norms[i] > 0.0 && norms[j] > 0.0 {
                total += dot / (norms[i] * norms[j]);
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

impl std::fmt::Display for TopicReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Topic {:>3}:", self.topic)?;
        for (word, _) in &self.top_words {
            write!(f, " {word}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{LdaConfig, LdaTrainer};
    use tsearch_text::TermId;

    fn block_docs() -> Vec<Vec<TermId>> {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            docs.push((0..30).map(|i| base + (i % 5) as u32).collect::<Vec<_>>());
        }
        docs
    }

    fn train(k: usize, seed: u64) -> LdaModel {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        LdaTrainer::train(
            &refs,
            10,
            LdaConfig {
                iterations: 60,
                alpha: Some(0.5),
                seed,
                ..LdaConfig::with_topics(k)
            },
        )
    }

    fn vocab10() -> Vocabulary {
        let mut v = Vocabulary::new();
        for i in 0..10 {
            v.intern(&format!("word{i:02}"));
        }
        v
    }

    #[test]
    fn report_renders_words() {
        let model = train(2, 1);
        let vocab = vocab10();
        let rep = topic_report(&model, &vocab, 0, 3);
        assert_eq!(rep.top_words.len(), 3);
        assert!(rep.top_words[0].1 >= rep.top_words[1].1);
        let all = all_topics(&model, &vocab, 2);
        assert_eq!(all.len(), 2);
        let _ = format!("{}", all[0]);
    }

    #[test]
    fn same_seed_topics_match_perfectly() {
        let a = train(2, 1);
        let sim = topic_cosine(&a, 0, &a, 0);
        assert!((sim - 1.0).abs() < 1e-9);
        let (best, s) = best_matching_topic(&a, 0, &a);
        assert_eq!(best, 0);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn topics_persist_across_seeds() {
        // The same clean two-block structure should be found regardless of
        // seed, so each topic of model A has a near-perfect match in B.
        let a = train(2, 1);
        let b = train(2, 2);
        for t in 0..2 {
            let (_, sim) = best_matching_topic(&a, t, &b);
            assert!(sim > 0.95, "topic {t} best match sim {sim}");
        }
    }

    #[test]
    fn too_few_topics_are_indistinct() {
        // K=1 on two-block data can't separate anything; K=2 can.
        let merged = train(1, 1);
        let split = train(2, 1);
        let sim_split = mean_pairwise_topic_similarity(&split);
        assert_eq!(mean_pairwise_topic_similarity(&merged), 0.0); // single topic
        assert!(sim_split < 0.5, "separated topics dissimilar: {sim_split}");
    }
}
