//! The server-side query log.
//!
//! The paper's threat model is a *curious* engine that records every
//! query it processes for after-the-fact analysis (Section III-B). Both
//! the single [`crate::SearchEngine`] and the term-sharded
//! [`crate::ShardedEngine`] expose their adversary view through this
//! structure; the sharded engine keeps one independently locked log per
//! shard (each shard sees only the sub-query routed to it) with ordinals
//! drawn from one atomic counter, so a global arrival order can be
//! reconstructed without any engine-wide lock.

use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// One entry of the server-side query log (what the adversary sees).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoggedQuery {
    /// Arrival position in the log. Within a sharded engine, ordinals are
    /// global: entries with the same ordinal on different shards are the
    /// per-shard slices of one client submission.
    pub ordinal: u64,
    /// Query text. The single engine logs the raw string as received
    /// (including out-of-vocabulary words); a shard never receives raw
    /// text — the router hands it only its terms — so sharded entries
    /// carry the canonical text of the shard's token slice instead.
    pub text: String,
    /// Analyzed token ids (a shard sees only the terms it owns).
    pub tokens: Vec<TermId>,
}

/// A bounded, ordinal-stamped query log.
///
/// Holds at most `capacity` entries, dropping the oldest first; the
/// ordinal counter survives trimming so ordinals stay unique and
/// monotone for the life of the engine.
#[derive(Debug)]
pub struct QueryLog {
    entries: Vec<LoggedQuery>,
    next_ordinal: u64,
    capacity: usize,
}

impl Default for QueryLog {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryLog {
    /// An unbounded log.
    pub fn new() -> Self {
        QueryLog {
            entries: Vec::new(),
            next_ordinal: 0,
            capacity: usize::MAX,
        }
    }

    /// Records an entry, assigning the next internal ordinal.
    pub fn push(&mut self, text: String, tokens: Vec<TermId>) -> u64 {
        let ordinal = self.next_ordinal;
        self.next_ordinal += 1;
        self.push_at(ordinal, text, tokens);
        ordinal
    }

    /// Records an entry under an externally assigned ordinal (the sharded
    /// engine draws ordinals from one atomic counter shared by all shard
    /// logs). Keeps the internal counter ahead of every seen ordinal so
    /// mixing both push styles cannot duplicate ordinals.
    pub fn push_at(&mut self, ordinal: u64, text: String, tokens: Vec<TermId>) {
        self.next_ordinal = self.next_ordinal.max(ordinal + 1);
        self.entries.push(LoggedQuery {
            ordinal,
            text,
            tokens,
        });
        if self.entries.len() > self.capacity {
            let excess = self.entries.len() - self.capacity;
            self.entries.drain(..excess);
        }
    }

    /// Snapshot of the retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<LoggedQuery> {
        self.entries.clone()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the entries and restarts ordinals.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_ordinal = 0;
    }

    /// Bounds the log to the most recent `capacity` entries (trimming
    /// immediately if already over).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if self.entries.len() > capacity {
            let excess = self.entries.len() - capacity;
            self.entries.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_are_monotone_across_trimming() {
        let mut log = QueryLog::new();
        log.set_capacity(2);
        for i in 0..5 {
            log.push(format!("q{i}"), vec![i as TermId]);
        }
        let entries = log.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].ordinal, 3);
        assert_eq!(entries[1].ordinal, 4);
        assert_eq!(log.push("next".into(), vec![]), 5);
    }

    #[test]
    fn push_at_keeps_counter_ahead() {
        let mut log = QueryLog::new();
        log.push_at(10, "a".into(), vec![]);
        assert_eq!(log.push("b".into(), vec![]), 11);
    }

    #[test]
    fn clear_restarts() {
        let mut log = QueryLog::new();
        log.push("a".into(), vec![1]);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.push("b".into(), vec![]), 0);
    }

    #[test]
    fn tightening_capacity_trims() {
        let mut log = QueryLog::new();
        for i in 0..4 {
            log.push(String::new(), vec![i]);
        }
        log.set_capacity(1);
        assert_eq!(log.len(), 1);
        assert_eq!(log.snapshot()[0].ordinal, 3);
    }
}
