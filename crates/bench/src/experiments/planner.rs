//! Experiment `planner` (extension beyond the paper): the fleet-level
//! cost of decoy traffic with and without the cross-session
//! [`toppriv_service::GhostPlanner`].
//!
//! The paper's per-user cycle multiplies engine load by the cycle
//! length υ (~7× at the defaults); at fleet scale most of those decoys
//! are redundant across tenants. The experiment runs the same planned
//! workload at 8/64/256 sessions twice per size — planner off
//! (every tenant pays its full cycle) and planner on (ghost reuse +
//! coalesced shared submissions) — and records the **fleet cost
//! ratio**: engine-side submissions per genuine query served. The
//! acceptance bar is ratio ≤ 3.0 at 64 sessions with the planner on,
//! against ~υ× off, with the audit plane green throughout.
//!
//! The privacy half replays the colluding-shards naive-Bayes attack on
//! the merged shard logs of the 64-session planner-on run: sharing
//! decoys across tenants must leave every single session inside the
//! paper's `(ε1, ε2)` bounds.
//!
//! Output: `BENCH_planner.json` (via `$TOPPRIV_BENCH_DIR`) plus one
//! result table.

use crate::context::ExperimentContext;
use crate::obsbench;
use crate::scenarios::{masking_violation, sharded_tier, FLEET_SEED, SHARDS, TOP_K, WORKERS};
use crate::table::{f3, ResultTable};
use std::sync::Arc;
use std::time::Instant;
use toppriv_adversary::{merge_shard_logs, run_classifier_attack, NaiveBayes};
use toppriv_core::{CycleResult, PrivacyRequirement};
use toppriv_obs::InvariantBlock;
use toppriv_service::{AuditConfig, CycleScheduler, GhostPlanner, PlannedQuery, SessionManager};

/// Fleet sizes swept (sessions sharing one tier).
pub const SESSIONS: [usize; 3] = [8, 64, 256];
/// Cycles each tenant plans.
const CYCLES_PER_TENANT: usize = 2;
/// Acceptance bar for the 64-session planner-on fleet cost ratio.
const TARGET_RATIO: f64 = 3.0;

/// One measured run: a fleet of `sessions` tenants, planner on or off.
struct RunStats {
    sessions: usize,
    planner_on: bool,
    engine_submits: u64,
    genuine: u64,
    ratio: f64,
    ratio_gauge_micro: i64,
    reused: u64,
    coalesced: u64,
    drained: usize,
    qps: f64,
    worst_violation: f64,
    audit_healthy: bool,
}

/// Ground truth kept from the 64-session planner-on run for the
/// adversary evaluation.
struct Artifacts {
    manager: Arc<SessionManager>,
    cycles: Vec<CycleResult>,
    truths: Vec<usize>,
}

/// Runs one fleet: plan everything (through the planner when on), one
/// timed drain, then read the ratio off the live metrics.
fn run_fleet(
    ctx: &ExperimentContext,
    sessions: usize,
    planner_on: bool,
    keep: bool,
) -> (RunStats, Option<Artifacts>) {
    let manager = Arc::new(
        SessionManager::with_tier(sharded_tier(ctx, SHARDS), ctx.default_model().clone())
            .with_cache(4096)
            .with_fleet_seed(FLEET_SEED)
            .with_auditor(AuditConfig::default()),
    );
    for s in 0..sessions {
        manager
            .open_session(&format!("plan-{s}"))
            .expect("fresh id");
    }
    // A shared query pool about a quarter the fleet size: several
    // tenants researching the same things concurrently — the overlap a
    // cross-session planner exists to exploit.
    let queries = ctx.sweep_queries();
    let pool = (sessions / 4).clamp(2, queries.len());
    let planner = planner_on.then(|| GhostPlanner::new(manager.clone()));
    let eps2 = PrivacyRequirement::paper_default().eps2;
    let mut worst_violation = f64::NEG_INFINITY;
    let mut cycles = Vec::new();
    let mut truths = Vec::new();
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for c in 0..CYCLES_PER_TENANT {
        for s in 0..sessions {
            let id = format!("plan-{s}");
            let q = &queries[(s + c * 3) % pool];
            let report = match &planner {
                Some(p) => p.plan_cycle(&id, &q.tokens, TOP_K).expect("open"),
                None => {
                    let (report, plan) = manager
                        .plan_cycle_with_report(&id, &q.tokens, TOP_K)
                        .expect("open");
                    plans.push(plan);
                    report
                }
            };
            worst_violation = worst_violation.max(masking_violation(&report.metrics, eps2));
            if keep {
                cycles.push(report);
                truths.push(q.target_topics[0]);
            }
        }
    }
    let queue = match &planner {
        Some(p) => p.take_queue(),
        None => CycleScheduler::merge(plans),
    };
    let expected: usize = queue.iter().map(|p| p.fanout()).sum();
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let t0 = Instant::now();
    let outcomes = scheduler.drain(queue);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(outcomes.len(), expected, "every subscriber outcome drains");

    let metrics = manager.metrics_registry();
    let global = metrics.snapshot();
    let stats = RunStats {
        sessions,
        planner_on,
        engine_submits: global.engine_submits,
        genuine: global.genuine_served,
        ratio: metrics.fleet_cost_ratio(),
        ratio_gauge_micro: metrics
            .registry()
            .gauge(toppriv_service::metrics::M_FLEET_COST_RATIO, &[])
            .get(),
        reused: global.planner_reuse,
        coalesced: global.planner_coalesced,
        drained: outcomes.len(),
        qps: outcomes.len() as f64 / secs.max(1e-9),
        worst_violation,
        audit_healthy: manager
            .auditor()
            .is_some_and(|a| a.health().healthy && a.cycles_audited() > 0),
    };
    let artifacts = keep.then(|| Artifacts {
        manager,
        cycles,
        truths,
    });
    (stats, artifacts)
}

/// Runs the cross-session planner experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    obsbench::reset_engine_stages();
    let mut runs: Vec<RunStats> = Vec::new();
    let mut artifacts: Option<Artifacts> = None;
    for &sessions in &SESSIONS {
        let (off, _) = run_fleet(ctx, sessions, false, false);
        let keep = sessions == 64;
        let (on, art) = run_fleet(ctx, sessions, true, keep);
        if keep {
            artifacts = art;
        }
        runs.push(off);
        runs.push(on);
    }

    let mut inv = InvariantBlock::default();
    let at = |sessions: usize, on: bool| {
        runs.iter()
            .find(|r| r.sessions == sessions && r.planner_on == on)
            .expect("run matrix is exhaustive")
    };
    let off64 = at(64, false);
    let on64 = at(64, true);
    inv.check(
        "fleet_cost_ratio_within_target",
        format!(
            "64 sessions: {:.2}x engine submissions per genuine query with the planner on \
             (target <= {TARGET_RATIO}x) vs {:.2}x off",
            on64.ratio, off64.ratio
        ),
        on64.ratio <= TARGET_RATIO && off64.ratio > TARGET_RATIO,
    );
    inv.check(
        "planner_cuts_engine_submissions_at_every_size",
        runs.chunks(2)
            .map(|pair| {
                format!(
                    "{} sessions: {} -> {} submits",
                    pair[0].sessions, pair[0].engine_submits, pair[1].engine_submits
                )
            })
            .collect::<Vec<_>>()
            .join("; "),
        SESSIONS
            .iter()
            .all(|&s| at(s, true).engine_submits < at(s, false).engine_submits),
    );
    inv.check(
        "ratio_gauge_live_in_micro_units",
        format!(
            "fleet_cost_ratio gauge {} µ-units vs computed {:.4}",
            on64.ratio_gauge_micro, on64.ratio
        ),
        (on64.ratio_gauge_micro as f64 - on64.ratio * 1e6).abs() < 1.0,
    );
    inv.check(
        "sharing_actually_happened",
        format!(
            "64 sessions on: {} coalesced subscriptions, {} ghost reuses",
            on64.coalesced, on64.reused
        ),
        on64.coalesced > 0,
    );
    let worst = runs
        .iter()
        .map(|r| r.worst_violation)
        .fold(f64::NEG_INFINITY, f64::max);
    inv.check(
        "every_cycle_passes_fleet_invariant",
        format!("worst min(exposure − mask_level, exposure − ε2) = {worst:.3e} across all runs"),
        worst <= 1e-9,
    );
    inv.check(
        "audit_plane_healthy_under_sharing",
        format!(
            "planner-on audit verdicts: {}",
            runs.iter()
                .filter(|r| r.planner_on)
                .map(|r| format!(
                    "{} sessions {}",
                    r.sessions,
                    if r.audit_healthy { "ok" } else { "BREACHED" }
                ))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        runs.iter()
            .filter(|r| r.planner_on)
            .all(|r| r.audit_healthy),
    );

    // --- Adversary: colluding shards attack the 64-on merged logs. -----
    let art = artifacts.expect("64-session planner-on artifacts kept");
    let tier = art.manager.tier();
    let shard_logs = tier.as_sharded().expect("sharded tier").shard_logs();
    let merged = merge_shard_logs(&shard_logs);
    let labeled: Vec<(&[u32], usize)> = ctx
        .corpus
        .docs
        .iter()
        .map(|d| {
            let label = d
                .mixture
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weight"))
                .map(|&(t, _)| t)
                .expect("non-empty mixture");
            (d.tokens.as_slice(), label)
        })
        .collect();
    let nb = NaiveBayes::train(
        &labeled,
        ctx.corpus.num_topics(),
        ctx.corpus.vocab.len(),
        1.0,
    );
    let report = run_classifier_attack(&nb, &art.cycles, &art.truths);
    let eps1 = PrivacyRequirement::paper_default().eps1;
    inv.check(
        "per_session_privacy_holds_on_merged_logs",
        format!(
            "{} merged submissions, {} cycles: genuine id {:.3} (chance {:.3} + ε1 {eps1}), \
             cycle recovery {:.3} vs unprotected {:.3}",
            merged.len(),
            report.cycles,
            report.genuine_identification,
            report.genuine_chance,
            report.cycle_recovery,
            report.unprotected_recovery
        ),
        !merged.is_empty()
            && report.genuine_identification <= report.genuine_chance + eps1
            && report.cycle_recovery < report.unprotected_recovery,
    );

    // --- Emit the bench trail from the 64-on fleet. --------------------
    let mut snap = obsbench::service_bench_snapshot(
        "planner",
        art.manager.metrics_registry().registry(),
        on64.qps,
        format!(
            "{:?} sessions x {CYCLES_PER_TENANT} cycles, {SHARDS} shards, {WORKERS} workers, \
             scale {}; fleet cost ratio off {:.2}x -> on {:.2}x at 64 sessions \
             ({} coalesced, {} reused)",
            SESSIONS, ctx.scale.name, off64.ratio, on64.ratio, on64.coalesced, on64.reused
        ),
    );
    snap.invariants = inv;
    obsbench::emit_bench(&snap);
    for c in snap.invariants.checks.iter().filter(|c| !c.pass) {
        eprintln!("  planner invariant FAILED {}: {}", c.name, c.detail);
    }
    art.manager.tier().clear_query_logs();

    let mut table = ResultTable::new(
        "ext9_cross_session_planner",
        "Cross-session ghost planner: engine submissions per genuine query (fleet cost \
         ratio), ghost reuse, and drain throughput at 8/64/256 sessions, planner off vs on",
        vec![
            "sessions".into(),
            "planner".into(),
            "engine_submits".into(),
            "genuine".into(),
            "fleet_cost_ratio".into(),
            "coalesced".into(),
            "reused".into(),
            "drained".into(),
            "drain_qps".into(),
        ],
    );
    for r in &runs {
        table.push_row(vec![
            r.sessions.to_string(),
            if r.planner_on { "on" } else { "off" }.into(),
            r.engine_submits.to_string(),
            r.genuine.to_string(),
            f3(r.ratio),
            r.coalesced.to_string(),
            r.reused.to_string(),
            r.drained.to_string(),
            f3(r.qps),
        ]);
    }
    vec![table]
}
