//! Experiment implementations, one submodule per paper artefact group.
//!
//! Every experiment consumes the shared [`ExperimentContext`] and returns
//! [`ResultTable`]s; the `reproduce` binary writes them as CSV under
//! `results/` and renders them to stdout.

pub mod ablations;
pub mod adversary;
pub mod appendix;
pub mod audit;
pub mod classifier;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod load;
pub mod mc;
pub mod pacing;
pub mod planner;
pub mod quality;
pub mod reduced;
pub mod scenarios;
pub mod service;
pub mod session;
pub mod sharding;
pub mod staleness;
pub mod stats;
pub mod tables;

use crate::context::ExperimentContext;
use crate::table::ResultTable;
use std::sync::Arc;
use toppriv_core::{BeliefEngine, GhostConfig, GhostGenerator, PrivacyMetrics, PrivacyRequirement};
use tsearch_corpus::BenchmarkQuery;
use tsearch_lda::LdaModel;

/// Mean aggregation of per-query privacy metrics at one sweep point.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCell {
    /// Mean exposure `max_{t∈U} B(t|C)`.
    pub exposure: f64,
    /// Mean mask level `max_{t∈T\U} B(t|C)`.
    pub mask: f64,
    /// Mean cycle length υ.
    pub cycle_len: f64,
    /// Mean ghost-generation seconds.
    pub gen_secs: f64,
    /// Mean `|U|`.
    pub num_relevant: f64,
    /// Mean best rank of any intention topic.
    pub best_rank: f64,
    /// Fraction of queries whose requirement was satisfied.
    pub satisfied: f64,
}

impl SweepCell {
    /// Averages a batch of metrics (`satisfied` supplied separately).
    pub fn aggregate(metrics: &[(PrivacyMetrics, bool)]) -> Self {
        let n = metrics.len().max(1) as f64;
        let mut cell = SweepCell::default();
        let mut ranked = 0usize;
        for (m, sat) in metrics {
            cell.exposure += m.exposure;
            cell.mask += m.mask_level;
            cell.cycle_len += m.cycle_len as f64;
            cell.gen_secs += m.generation_secs;
            cell.num_relevant += m.num_relevant as f64;
            if m.best_intention_rank > 0 {
                cell.best_rank += m.best_intention_rank as f64;
                ranked += 1;
            }
            cell.satisfied += if *sat { 1.0 } else { 0.0 };
        }
        cell.exposure /= n;
        cell.mask /= n;
        cell.cycle_len /= n;
        cell.gen_secs /= n;
        cell.num_relevant /= n;
        cell.best_rank /= ranked.max(1) as f64;
        cell.satisfied /= n;
        cell
    }
}

/// Runs TopPriv over `queries` at one `(ε1, ε2)` point under `model`.
pub fn protect_queries(
    model: &Arc<LdaModel>,
    queries: &[BenchmarkQuery],
    requirement: PrivacyRequirement,
) -> SweepCell {
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        requirement,
        GhostConfig::default(),
    );
    let metrics: Vec<(PrivacyMetrics, bool)> = queries
        .iter()
        .map(|q| {
            let r = generator.generate(&q.tokens);
            (r.metrics, r.satisfied)
        })
        .collect();
    SweepCell::aggregate(&metrics)
}

/// Runs a full `(model × ε-grid)` sweep in parallel across models.
/// `make_requirement` maps a grid value to the `(ε1, ε2)` point.
pub fn eps_sweep<F>(
    ctx: &ExperimentContext,
    make_requirement: F,
) -> Vec<(usize, Vec<(f64, SweepCell)>)>
where
    F: Fn(f64) -> PrivacyRequirement + Sync,
{
    let queries = ctx.sweep_queries();
    std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .models
            .iter()
            .map(|(k, model)| {
                let make_requirement = &make_requirement;
                s.spawn(move || {
                    let cells: Vec<(f64, SweepCell)> = ctx
                        .scale
                        .eps_grid
                        .iter()
                        .map(|&eps| (eps, protect_queries(model, queries, make_requirement(eps))))
                        .collect();
                    (*k, cells)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
}

/// Builds one figure-panel table from sweep results: rows = ε values,
/// columns = models, cell = `extract(cell)` formatted by `fmt`.
pub fn sweep_table(
    name: &str,
    caption: &str,
    eps_label: &str,
    sweep: &[(usize, Vec<(f64, SweepCell)>)],
    extract: impl Fn(&SweepCell) -> f64,
    fmt: impl Fn(f64) -> String,
) -> ResultTable {
    let mut header = vec![eps_label.to_string()];
    header.extend(
        sweep
            .iter()
            .map(|(k, _)| crate::scale::Scale::model_label(*k)),
    );
    let mut table = ResultTable::new(name, caption, header);
    if let Some((_, first)) = sweep.first() {
        for (i, &(eps, _)) in first.iter().enumerate() {
            let mut row = vec![crate::table::pct(eps)];
            for (_, cells) in sweep {
                row.push(fmt(extract(&cells[i].1)));
            }
            table.push_row(row);
        }
    }
    table
}

/// Writes and prints a batch of tables.
pub fn emit(tables: &[ResultTable], out_dir: &std::path::Path, quiet: bool) {
    for t in tables {
        match t.write_csv(out_dir) {
            Ok(path) => {
                if !quiet {
                    println!("{}", t.render());
                    println!("   -> {}", path.display());
                }
            }
            Err(e) => eprintln!("failed to write {}: {e}", t.name),
        }
    }
}
