//! Thin client: reduced-data LDA training + crash-safe model cache.
//!
//! Section V-A of the paper flags the LDA model's training cost and
//! ~140 MB client footprint as TopPriv's main scaling obstacle and
//! sketches the fix — train on sampled documents and TF-IDF-pruned
//! vocabulary — as future work. This example runs that pipeline end to
//! end on a laptop-class budget:
//!
//! 1. train a reduced model (half the documents, a quarter of the
//!    vocabulary);
//! 2. persist it in the checksummed artifact store and reload it, as a
//!    returning client would;
//! 3. protect queries with ghosts generated from the reduced model;
//! 4. audit the result with the *full* model — the adversary's view —
//!    to show the (ε1, ε2) requirement still holds;
//! 5. hand the session over to the `toppriv-service` layer: the same
//!    thin client becomes one tenant of a shared `SessionManager`, with
//!    the heavyweight model living once behind an `Arc`.
//!
//! Run with:
//! ```text
//! cargo run --release --example thin_client
//! ```

use std::sync::Arc;
use toppriv::core::exposure;
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::lda::{LdaConfig, LdaTrainer, ReducedModel, ReductionConfig};
use toppriv::service::SessionManager;
use toppriv::store::{kind, ArtifactStore};
use toppriv::text::Analyzer;
use toppriv::{
    BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement, ScoringModel,
    SearchEngine,
};

fn main() {
    let config = CorpusConfig {
        num_docs: 1200,
        num_topics: 16,
        terms_per_topic: 80,
        ..CorpusConfig::default()
    };
    let corpus = toppriv::SyntheticCorpus::generate(config);
    let docs = corpus.token_docs();
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 12,
            ..WorkloadConfig::default()
        },
    );
    let k = 32;
    let iters = 40;

    // The reference model — what the search engine (adversary) can train
    // on the full corpus it hosts.
    let full = Arc::new(LdaTrainer::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: iters,
            ..LdaConfig::with_topics(k)
        },
    ));

    // 1. The thin client trains on half the docs, a quarter of the vocab.
    let t0 = std::time::Instant::now();
    let reduced = ReducedModel::train(
        &docs,
        corpus.vocab.len(),
        LdaConfig {
            iterations: iters,
            ..LdaConfig::with_topics(k)
        },
        ReductionConfig {
            doc_rate: 0.5,
            vocab_rate: 0.25,
            ..Default::default()
        },
    );
    println!(
        "reduced training: {:.2}s over {} docs, {} of {} terms kept ({:.1}% of tokens dropped)",
        t0.elapsed().as_secs_f64(),
        reduced.sampled_docs(),
        reduced.vocab_map().reduced_size(),
        reduced.vocab_map().full_size(),
        reduced.token_drop_rate() * 100.0
    );
    println!(
        "client footprint: {:.2} MB reduced vs {:.2} MB full",
        reduced.client_bytes() as f64 / (1024.0 * 1024.0),
        full.size_breakdown().client_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 2. Persist → reload, as across client sessions.
    let dir = std::env::temp_dir().join("toppriv-thin-client");
    {
        let mut store = ArtifactStore::open(&dir).expect("open store");
        store
            .put(
                "reduced-model",
                kind::LDA_MODEL,
                &toppriv::lda::encode(reduced.model()),
            )
            .expect("persist model");
        store
            .put(
                "vocab-map",
                kind::VOCAB_MAP,
                &serde_json::to_vec(reduced.vocab_map()).expect("map serializes"),
            )
            .expect("persist map");
    }
    let store = ArtifactStore::open(&dir).expect("reopen store");
    assert!(store.verify_all().is_empty(), "artifacts intact");
    let reloaded = Arc::new(
        toppriv::lda::decode(&store.get("reduced-model", kind::LDA_MODEL).unwrap()).unwrap(),
    );
    println!(
        "store: {} artifacts verified under {}",
        store.list().count(),
        dir.display()
    );

    // 3 + 4. Generate ghosts from the reloaded reduced model and audit
    // with the full model. The client works entirely in the reduced term
    // space — queries are projected in, ghost terms mapped back out — so
    // the expanded matrix never has to exist in client memory.
    let map: toppriv::lda::VocabMap =
        serde_json::from_slice(&store.get("vocab-map", kind::VOCAB_MAP).unwrap()).unwrap();
    assert_eq!(map.reduced_size(), reloaded.vocab_size());
    let reduced = (reloaded, map);
    let requirement = PrivacyRequirement::paper_default();
    let generator = GhostGenerator::new(
        BeliefEngine::new(reduced.0.clone()),
        requirement,
        GhostConfig::default(),
    );
    let audit = BeliefEngine::new(full.clone());

    let mut worst = 0.0f64;
    let mut satisfied = 0usize;
    let mut audited = 0usize;
    for q in &queries {
        let projected = reduced.1.project(&q.tokens);
        let r = generator.generate(&projected);
        // Map every cycle query back to full term ids for submission.
        let cycle_full: Vec<Vec<u32>> = r
            .cycle
            .iter()
            .enumerate()
            .map(|(i, cq)| {
                if i == r.genuine_index {
                    q.tokens.clone() // the genuine query goes out unmodified
                } else {
                    cq.tokens.iter().map(|&w| reduced.1.to_full(w)).collect()
                }
            })
            .collect();
        // Adversary audit in the full model's topic space.
        let solo = audit.boost(&q.tokens);
        let intention = requirement.user_intention(&solo);
        if intention.is_empty() {
            continue;
        }
        let posteriors: Vec<Vec<f64>> = cycle_full.iter().map(|t| audit.posterior(t)).collect();
        let cycle_boosts = audit.cycle_boost(&posteriors);
        let e = exposure(&cycle_boosts, &intention);
        worst = worst.max(e);
        audited += 1;
        if requirement.is_satisfied(&cycle_boosts, &intention) {
            satisfied += 1;
        }
    }
    println!(
        "audit with the FULL model: {satisfied}/{audited} queries satisfy (ε1,ε2)=(5%,1%), worst exposure {:.2}%",
        worst * 100.0
    );

    // 5. The same client as a service tenant: one SessionManager shares
    //    the engine and the full model across any number of thin clients;
    //    the result cache absorbs the decoys tenants have in common.
    let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
    let engine = Arc::new(SearchEngine::build(
        &docs,
        &texts,
        Analyzer::new(),
        corpus.vocab.clone(),
        ScoringModel::TfIdfCosine,
    ));
    let manager = SessionManager::new(engine, full.clone()).with_cache(1024);
    for tenant in ["thin-a", "thin-b"] {
        manager.open_session(tenant).expect("fresh tenant id");
    }
    for q in queries.iter().take(6) {
        let a = manager
            .search_tokens("thin-a", &q.tokens, 10)
            .expect("tenant open");
        let b = manager
            .search_tokens("thin-b", &q.tokens, 10)
            .expect("tenant open");
        assert_eq!(a.hits.len(), b.hits.len(), "tenants see identical results");
        assert!(
            b.cache_hits > 0,
            "the repeated cycle should come from cache"
        );
    }
    let snapshot = manager.metrics();
    println!(
        "service: {} tenants, {} submissions, cache hit rate {:.0}%, worst session exposure {:.2}%",
        snapshot.sessions.len(),
        snapshot.global.submitted,
        snapshot.global.cache_hit_rate * 100.0,
        snapshot
            .sessions
            .iter()
            .map(|m| m.worst_exposure)
            .fold(0.0f64, f64::max)
            * 100.0,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
