//! Corpus-level statistics, mirroring the collection statistics the paper
//! reports for WSJ (document count, vocabulary size, list lengths).

use crate::generator::SyntheticCorpus;
use serde::{Deserialize, Serialize};

/// Summary statistics of a generated corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of documents.
    pub num_docs: usize,
    /// Vocabulary size (distinct terms).
    pub vocab_size: usize,
    /// Vocabulary terms that actually occur at least once.
    pub observed_terms: usize,
    /// Total token count across all documents.
    pub total_tokens: u64,
    /// Mean document length in tokens.
    pub avg_doc_len: f64,
    /// Maximum document length.
    pub max_doc_len: usize,
    /// Minimum document length.
    pub min_doc_len: usize,
    /// Mean document frequency over observed terms (mean inverted-list
    /// length; 186.7 for the paper's WSJ corpus).
    pub avg_doc_freq: f64,
    /// Maximum document frequency (127,848 for the paper's WSJ corpus).
    pub max_doc_freq: u32,
}

impl CorpusStats {
    /// Computes statistics for `corpus`.
    pub fn compute(corpus: &SyntheticCorpus) -> Self {
        let num_docs = corpus.num_docs();
        let vocab_size = corpus.vocab.len();
        let lengths: Vec<usize> = corpus.docs.iter().map(|d| d.tokens.len()).collect();
        let total_tokens: u64 = lengths.iter().map(|&l| l as u64).sum();
        let mut observed = 0usize;
        let mut df_sum: u64 = 0;
        let mut df_max: u32 = 0;
        for id in 0..vocab_size as u32 {
            let df = corpus.vocab.doc_freq(id);
            if df > 0 {
                observed += 1;
                df_sum += df as u64;
                df_max = df_max.max(df);
            }
        }
        CorpusStats {
            num_docs,
            vocab_size,
            observed_terms: observed,
            total_tokens,
            avg_doc_len: total_tokens as f64 / num_docs.max(1) as f64,
            max_doc_len: lengths.iter().copied().max().unwrap_or(0),
            min_doc_len: lengths.iter().copied().min().unwrap_or(0),
            avg_doc_freq: if observed == 0 {
                0.0
            } else {
                df_sum as f64 / observed as f64
            },
            max_doc_freq: df_max,
        }
    }
}

/// Observed vocabulary growth: `(documents, distinct terms)` measured at
/// geometric prefixes of the corpus. Feeds the Heaps-law argument behind
/// Figure 6 (vocabulary — and hence the LDA model — grows sublinearly).
pub fn vocabulary_growth(corpus: &SyntheticCorpus) -> Vec<(usize, usize)> {
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut points = Vec::new();
    let mut next_checkpoint = 8usize;
    for (i, doc) in corpus.docs.iter().enumerate() {
        seen.extend(doc.tokens.iter().copied());
        if i + 1 == next_checkpoint || i + 1 == corpus.docs.len() {
            points.push((i + 1, seen.len()));
            next_checkpoint *= 2;
        }
    }
    points
}

/// Least-squares fit of Heaps' law `V = k · n^β` in log-log space,
/// returning `(k, β)`. Needs at least two points.
pub fn fit_heaps(points: &[(usize, usize)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(n, v)| n > 0 && v > 0)
        .map(|&(n, v)| ((n as f64).ln(), (v as f64).ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|&(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let beta = (n * sxy - sx * sy) / denom;
    let ln_k = (sy - beta * sx) / n;
    Some((ln_k.exp(), beta))
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "documents        : {}", self.num_docs)?;
        writeln!(f, "vocabulary       : {}", self.vocab_size)?;
        writeln!(f, "observed terms   : {}", self.observed_terms)?;
        writeln!(f, "total tokens     : {}", self.total_tokens)?;
        writeln!(f, "avg doc length   : {:.1}", self.avg_doc_len)?;
        writeln!(
            f,
            "doc length range : [{}, {}]",
            self.min_doc_len, self.max_doc_len
        )?;
        writeln!(f, "avg doc freq     : {:.1}", self.avg_doc_freq)?;
        writeln!(f, "max doc freq     : {}", self.max_doc_freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CorpusConfig;

    #[test]
    fn vocabulary_grows_sublinearly() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
        let growth = vocabulary_growth(&corpus);
        assert!(growth.len() >= 3, "need several checkpoints");
        // Monotone nondecreasing vocabulary.
        for pair in growth.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        let (_k, beta) = fit_heaps(&growth).unwrap();
        assert!(
            beta > 0.0 && beta < 1.0,
            "Heaps exponent must be sublinear: {beta}"
        );
    }

    #[test]
    fn heaps_fit_recovers_known_exponent() {
        // Synthetic exact law: V = 3 n^0.5.
        let points: Vec<(usize, usize)> = [10usize, 100, 1000, 10000]
            .iter()
            .map(|&n| (n, (3.0 * (n as f64).powf(0.5)).round() as usize))
            .collect();
        let (k, beta) = fit_heaps(&points).unwrap();
        assert!((beta - 0.5).abs() < 0.02, "beta {beta}");
        assert!((k - 3.0).abs() < 0.3, "k {k}");
        assert!(fit_heaps(&points[..1]).is_none());
    }

    #[test]
    fn stats_are_consistent() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
        let stats = CorpusStats::compute(&corpus);
        assert_eq!(stats.num_docs, corpus.num_docs());
        assert_eq!(stats.vocab_size, corpus.vocab.len());
        assert!(stats.observed_terms <= stats.vocab_size);
        assert!(stats.avg_doc_len >= stats.min_doc_len as f64);
        assert!(stats.avg_doc_len <= stats.max_doc_len as f64);
        assert!(stats.avg_doc_freq >= 1.0);
        assert!(stats.max_doc_freq as usize <= stats.num_docs);
        // Display renders without panicking.
        let _ = format!("{stats}");
    }
}
