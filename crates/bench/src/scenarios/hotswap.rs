//! Scenario `hotswap`: epoch-style `Arc<LdaModel>` swap under load.
//!
//! A fleet that never restarts must deploy a retrained model while
//! tenants keep searching. The scenario exercises the manager's
//! epoch-swap machinery three ways:
//!
//! 1. **Determinism across an identical reload** — the model is
//!    serialized and decoded (a real "reload from disk") and swapped
//!    in; the same query from the same fleet must formulate an
//!    identical cycle and rank identically, proving the swap machinery
//!    itself adds no nondeterminism and cross-tenant cache identity is
//!    preserved.
//! 2. **Swap concurrent with a drain** — a worker pool drains a merged
//!    queue while the swap happens mid-flight; every submission must
//!    still resolve (in-flight generators pin the old model via its
//!    `Arc`).
//! 3. **Staleness delta** — the corpus evolves, a fresh model (same K)
//!    is trained on it, and the swap must buy the protection the
//!    `staleness` experiment quantifies: new-topic queries that the
//!    stale model left naked (empty intention, no ghosts) get cycles
//!    again under the fresh model. Session accounting stays continuous
//!    across the swap (same K → no reset).

use super::{finish, fleet_manager, sharded_tier, ScenarioReport, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use crate::obsbench;
use std::sync::Arc;
use std::time::Instant;
use toppriv_obs::InvariantBlock;
use toppriv_service::{CycleScheduler, PlannedQuery};
use tsearch_corpus::{generate_workload, EvolutionConfig, WorkloadConfig};
use tsearch_lda::{LdaConfig, LdaTrainer};

/// Sessions the scenario runs.
const SESSIONS: usize = 8;

/// Runs the hot-swap scenario.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    let tier = sharded_tier(ctx, SHARDS);
    let manager = fleet_manager(ctx, tier.clone());
    obsbench::reset_engine_stages();
    super::open_tenants(&manager, SESSIONS);
    let mut inv = InvariantBlock::default();
    let queries = ctx.sweep_queries();
    let probe = &queries[0];
    let mut drained = 0usize;
    let mut drain_secs = 0.0f64;

    // --- 1. Identical reload: serialize → decode → swap. -------------
    let before = manager
        .search_tokens("tenant-0", &probe.tokens, TOP_K)
        .expect("probe search");
    let reloaded = Arc::new(
        tsearch_lda::decode(&tsearch_lda::encode(ctx.default_model()))
            .expect("model codec round-trip"),
    );
    let epoch = manager.swap_model(reloaded);
    let after = manager
        .search_tokens("tenant-1", &probe.tokens, TOP_K)
        .expect("probe search after swap");
    let same_cycle = before.report.cycle.len() == after.report.cycle.len()
        && before
            .report
            .cycle
            .iter()
            .zip(&after.report.cycle)
            .all(|(a, b)| a.tokens == b.tokens && a.is_genuine == b.is_genuine);
    inv.check(
        "decoys_deterministic_across_reload",
        format!(
            "identical-model swap (epoch {epoch}): cycle of {} queries {} the pre-swap cycle",
            after.report.cycle.len(),
            if same_cycle {
                "matches"
            } else {
                "differs from"
            }
        ),
        same_cycle,
    );
    let same_ranking = before.hits.len() == after.hits.len()
        && before
            .hits
            .iter()
            .zip(&after.hits)
            .all(|(a, b)| a.doc_id == b.doc_id && (a.score - b.score).abs() <= 1e-9);
    inv.check(
        "rankings_continuous_across_swap",
        format!(
            "probe query top-{} identical before/after swap: {same_ranking}",
            before.hits.len()
        ),
        same_ranking,
    );
    // Cache identity: the post-swap cycle re-derived the same decoys,
    // so every member should have been served from the shared cache.
    inv.check(
        "cache_identity_preserved",
        format!(
            "post-swap cycle: {}/{} members cache-served",
            after.cache_hits,
            after.report.cycle.len()
        ),
        after.cache_hits == after.report.cycle.len(),
    );

    // --- 2. Swap concurrent with an active drain. ---------------------
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for (s, id) in manager.session_ids().iter().enumerate() {
        for c in 0..2 {
            let q = &queries[(s * 3 + c) % queries.len()];
            plans.push(manager.plan_cycle(id, &q.tokens, TOP_K).expect("open"));
        }
    }
    let queue = CycleScheduler::merge(plans);
    let expected = queue.len();
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let t0 = Instant::now();
    let (drain_result, mid_epoch) = std::thread::scope(|scope| {
        let handle = scope.spawn(|| scheduler.try_drain(queue));
        // Swap while the pool is (very likely) mid-drain; correctness
        // does not depend on the overlap, only the stress does.
        let reloaded = Arc::new(
            tsearch_lda::decode(&tsearch_lda::encode(ctx.default_model()))
                .expect("model codec round-trip"),
        );
        let mid_epoch = manager.swap_model(reloaded);
        (handle.join().expect("drain thread"), mid_epoch)
    });
    drain_secs += t0.elapsed().as_secs_f64();
    let (ok, got) = match &drain_result {
        Ok(outcomes) => (outcomes.len() == expected, outcomes.len()),
        Err(e) => (false, e.completed.len()),
    };
    drained += got;
    inv.check(
        "no_submissions_lost_to_swap",
        format!("{got}/{expected} submissions drained while swapping to epoch {mid_epoch}"),
        ok,
    );

    // --- 3. Staleness delta: retrain on the evolved corpus (same K). ---
    let base_topics = ctx.corpus.num_topics();
    let evolved = ctx.corpus.evolve(EvolutionConfig {
        new_topics: (base_topics / 5).max(2),
        new_docs: (ctx.corpus.num_docs() / 5).max(50),
        new_topic_share: 0.8,
        ..Default::default()
    });
    let pool = generate_workload(
        &evolved,
        &WorkloadConfig {
            num_queries: ctx.scale.queries_per_setting * 8,
            ..ctx.scale.workload.clone()
        },
    );
    let new_topic_queries: Vec<_> = pool
        .iter()
        .filter(|q| q.target_topics.iter().all(|&t| t >= base_topics))
        .take(ctx.scale.queries_per_setting.max(8))
        .collect();
    // Stale view: the current (pre-retrain) model drops OOV terms and
    // sees nothing to protect.
    let old_vocab = ctx.corpus.vocab.len() as u32;
    let mut stale_naked = 0usize;
    let mut stale_total = 0usize;
    for q in &new_topic_queries {
        let projected: Vec<u32> = q
            .tokens
            .iter()
            .copied()
            .filter(|&w| w < old_vocab)
            .collect();
        if projected.is_empty() {
            stale_naked += 1;
            stale_total += 1;
            continue;
        }
        let out = manager
            .search_tokens("tenant-2", &projected, TOP_K)
            .expect("stale search");
        if out.report.intention.is_empty() {
            stale_naked += 1;
        }
        stale_total += 1;
    }
    let pre_swap = manager
        .session_metrics("tenant-2")
        .expect("open session")
        .cycles;
    let fresh = Arc::new(LdaTrainer::train(
        &evolved.token_docs(),
        evolved.vocab.len(),
        LdaConfig {
            iterations: ctx.scale.lda_iterations,
            ..LdaConfig::with_topics(ctx.scale.default_k)
        },
    ));
    let fresh_epoch = manager.swap_model(fresh);
    // The fresh model speaks the evolved vocabulary, which this tier's
    // index does not hold yet — so the fresh view is assessed at the
    // formulation layer (plan, no resolution); swapping the index too
    // is the `evolution` scenario's job.
    let mut fresh_protected = 0usize;
    for q in &new_topic_queries {
        let (report, _plan) = manager
            .plan_cycle_with_report("tenant-2", &q.tokens, TOP_K)
            .expect("fresh plan");
        if !report.intention.is_empty() && report.cycle.len() > 1 {
            fresh_protected += 1;
        }
    }
    inv.check(
        "staleness_delta_recovered",
        format!(
            "{stale_naked}/{stale_total} new-topic queries naked under the stale model; \
             {fresh_protected}/{} protected after the epoch-{fresh_epoch} retrain swap",
            new_topic_queries.len()
        ),
        stale_naked > 0 && fresh_protected > 0,
    );
    // Same K → the session's accounting must carry across the swap.
    let post_swap = manager
        .session_metrics("tenant-2")
        .expect("open session")
        .cycles;
    inv.check(
        "accounting_continuous_across_swap",
        format!(
            "tenant-2 cycles {pre_swap} before swap, {post_swap} after \
             (+{} new-topic searches, same K = {})",
            new_topic_queries.len(),
            ctx.scale.default_k
        ),
        post_swap == pre_swap + new_topic_queries.len() as u64,
    );
    inv.check(
        "epoch_monotone",
        format!("3 swaps performed, final epoch {}", manager.model_epoch()),
        manager.model_epoch() == 3 && fresh_epoch == 3,
    );

    let qps = drained as f64 / drain_secs.max(1e-9);
    let notes = format!(
        "{SESSIONS} sessions, {SHARDS} shards, {WORKERS} workers; identical reload swap + \
         swap-under-drain + evolved-corpus retrain swap (K={})",
        ctx.scale.default_k
    );
    let report = finish("hotswap", &manager, qps, notes, inv);
    manager.tier().clear_query_logs();
    report
}
