//! The paper's motivating scenario: a developer doing a clean-room
//! implementation must be able to plausibly deny researching a sensitive
//! topic on the enterprise text database.
//!
//! This example protects a burst of queries on one sensitive topic and
//! then plays the adversary: it recomputes topical boosts from the query
//! log and shows where the sensitive topic ranks — with and without
//! TopPriv.
//!
//! Run with:
//! ```text
//! cargo run --release --example clean_room
//! ```

use std::sync::Arc;
use toppriv::core::{exposure, intention_ranks};
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{
    BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement, TrustedClient,
};

fn main() {
    let (corpus, engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 800,
            num_topics: 12,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        24,
        40,
    );
    let engine = Arc::new(engine);
    // Five queries, all on the same sensitive ground-truth topic (think
    // "image compression" in the paper's story).
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 40,
            two_topic_prob: 0.0,
            ..WorkloadConfig::default()
        },
    );
    let sensitive_topic = queries[0].target_topics[0];
    let session: Vec<_> = queries
        .iter()
        .filter(|q| q.target_topics == vec![sensitive_topic])
        .take(5)
        .collect();
    println!(
        "developer session: {} queries on sensitive ground-truth topic {}",
        session.len(),
        sensitive_topic
    );

    let requirement = PrivacyRequirement::paper_default();
    let belief = BeliefEngine::new(model.clone());

    // --- Without protection -------------------------------------------------
    println!("\n--- unprotected trace (what a naive client leaks)");
    for q in &session {
        let boosts = belief.boost(&q.tokens);
        let intention = requirement.user_intention(&boosts);
        let ranks = intention_ranks(&boosts, &intention);
        println!(
            "  \"{}\": intention {:?} exposed at {:.1}%, best rank {:?}",
            &q.text.chars().take(40).collect::<String>(),
            intention,
            exposure(&boosts, &intention) * 100.0,
            ranks.iter().min()
        );
    }

    // --- With TopPriv --------------------------------------------------------
    println!("\n--- TopPriv-protected trace");
    let client = TrustedClient::new(
        engine.clone(),
        GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            requirement,
            GhostConfig::default(),
        ),
    );
    for q in &session {
        let result = client.search_tokens(&q.tokens, 5);
        let r = &result.report;
        let ranks = intention_ranks(&r.cycle_boosts, &r.intention);
        println!(
            "  \"{}\": {} ghosts, exposure {:.2}% (satisfied: {}), intention now ranked {:?} of {}",
            &q.text.chars().take(40).collect::<String>(),
            r.cycle_len() - 1,
            r.metrics.exposure * 100.0,
            r.satisfied,
            ranks,
            model.num_topics(),
        );
    }

    println!(
        "\nserver log now holds {} queries; the sensitive topic is buried \
         below masking topics in every cycle.",
        engine.query_log().len()
    );
}
