//! Service-wide observability.
//!
//! [`ServiceMetrics`] is the shared front door every subsystem reports
//! into: the cache (hit/miss), the cycle scheduler (queue depth, submit
//! latency), and the session manager (per-session privacy counters).
//! Since PR 6 the storage behind it is a [`toppriv_obs::MetricsRegistry`]
//! — named counters/gauges/histograms over lock-free atomics — so the
//! hot paths never take a lock that a panicked worker could poison, and
//! the same registry feeds the NDJSON/Prometheus exposition in
//! `toppriv-serve` and the `BENCH_*.json` writers in `toppriv-bench`.
//!
//! Submit latency lives in a log-linear HDR-style histogram
//! ([`toppriv_obs::Histogram`]): bounded memory like the old
//! Algorithm-R reservoir, but deterministic, mergeable, and within
//! [`toppriv_obs::RELATIVE_ERROR`] on every percentile instead of
//! sampling error.
//!
//! Each `ServiceMetrics::new()` gets a private registry so managers in
//! tests and experiments stay isolated; `toppriv-serve` constructs one
//! over [`toppriv_obs::global()`] so engine-layer metrics (scatter /
//! gather, pacing) and service metrics expose through one endpoint.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use toppriv_obs::{Counter, Gauge, HistogramHandle, MetricsRegistry};

/// Metric name: total cycle members resolved.
pub const M_SUBMITTED: &str = "service_submits_total";
/// Metric name: resolutions served from the result cache.
pub const M_CACHE_HITS: &str = "service_cache_hits_total";
/// Metric name: resolutions that reached the engine.
pub const M_CACHE_MISSES: &str = "service_cache_misses_total";
/// Metric name: genuine queries served.
pub const M_GENUINE: &str = "service_genuine_total";
/// Metric name: ghost queries processed.
pub const M_GHOSTS: &str = "service_ghosts_total";
/// Metric name: scheduler queue depth (global gauge; with a `shard`
/// label, the per-shard queue of the current drain).
pub const M_QUEUE_DEPTH: &str = "scheduler_queue_depth";
/// Metric name: high-water mark of the global queue depth.
pub const M_QUEUE_DEPTH_MAX: &str = "scheduler_queue_depth_max";
/// Metric name: submit resolution latency histogram (µs).
pub const M_SUBMIT_US: &str = "service_submit_us";
/// Metric name: unique engine-side submissions — one per queue entry
/// resolved against the cache/tier, regardless of how many tenants
/// subscribe to it.
pub const M_ENGINE_SUBMITS: &str = "service_engine_submits_total";
/// Metric name: live fleet cost ratio gauge — engine submissions per
/// genuine query, in micro-units (`ratio × 1e6`, gauges being integral).
pub const M_FLEET_COST_RATIO: &str = "fleet_cost_ratio";
/// Metric name: ghost members the planner replaced with another tenant's
/// already-planned submission (donor reuse).
pub const M_PLANNER_REUSE: &str = "planner_reuse_total";
/// Metric name: planned submissions coalesced into an existing shared
/// queue entry instead of being enqueued (engine submissions avoided).
pub const M_PLANNER_COALESCED: &str = "planner_coalesced_total";

/// Fixed-point scale of the [`M_FLEET_COST_RATIO`] gauge.
pub const RATIO_MICRO: f64 = 1e6;

/// Shared counters and the submit-latency histogram, backed by a
/// metrics registry.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: Arc<MetricsRegistry>,
    submitted: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    genuine_served: Counter,
    ghosts_processed: Counter,
    queue_depth: Gauge,
    max_queue_depth: Gauge,
    submit_us: HistogramHandle,
    engine_submits: Counter,
    fleet_cost_ratio: Gauge,
    planner_reuse: Counter,
    planner_coalesced: Counter,
    /// High-water count of per-shard depth gauges handed out, so
    /// snapshots know how many `shard=` gauges to read back.
    shards_seen: AtomicUsize,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// A fresh, private registry (what tests and experiments want: no
    /// cross-talk between managers).
    pub fn new() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Metrics over an existing registry — pass
    /// [`toppriv_obs::global()`]'s clone to unify service metrics with
    /// the engine-layer instrumentation for exposition.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        ServiceMetrics {
            submitted: registry.counter(M_SUBMITTED, &[]),
            cache_hits: registry.counter(M_CACHE_HITS, &[]),
            cache_misses: registry.counter(M_CACHE_MISSES, &[]),
            genuine_served: registry.counter(M_GENUINE, &[]),
            ghosts_processed: registry.counter(M_GHOSTS, &[]),
            queue_depth: registry.gauge(M_QUEUE_DEPTH, &[]),
            max_queue_depth: registry.gauge(M_QUEUE_DEPTH_MAX, &[]),
            submit_us: registry.histogram(M_SUBMIT_US, &[]),
            engine_submits: registry.counter(M_ENGINE_SUBMITS, &[]),
            fleet_cost_ratio: registry.gauge(M_FLEET_COST_RATIO, &[]),
            planner_reuse: registry.counter(M_PLANNER_REUSE, &[]),
            planner_coalesced: registry.counter(M_PLANNER_COALESCED, &[]),
            shards_seen: AtomicUsize::new(0),
            registry,
        }
    }

    /// The backing registry (for exposition and stage histograms).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Records one resolved cycle member. Entirely lock-free.
    pub fn record_submit(&self, latency_us: u64, cache_hit: bool, is_genuine: bool) {
        self.submitted.inc();
        if cache_hit {
            self.cache_hits.inc();
        } else {
            self.cache_misses.inc();
        }
        if is_genuine {
            self.genuine_served.inc();
            self.refresh_fleet_cost_ratio();
        } else {
            self.ghosts_processed.inc();
        }
        self.submit_us.record(latency_us);
    }

    /// Records one **unique** engine-side submission: a queue entry
    /// resolved against the cache/tier, counted once no matter how many
    /// tenants subscribe to its results. The live fleet cost ratio is
    /// this counter over genuine queries served.
    pub fn record_engine_submission(&self) {
        self.engine_submits.inc();
        self.refresh_fleet_cost_ratio();
    }

    /// Counts one planner donor-reuse substitution.
    pub fn record_planner_reuse(&self) {
        self.planner_reuse.inc();
    }

    /// Counts one planned submission coalesced into a shared queue entry.
    pub fn record_planner_coalesced(&self) {
        self.planner_coalesced.inc();
    }

    /// Engine submissions per genuine query (the fleet cost ratio υ_eff);
    /// 0 before any genuine query was served.
    pub fn fleet_cost_ratio(&self) -> f64 {
        let genuine = self.genuine_served.get();
        if genuine == 0 {
            0.0
        } else {
            self.engine_submits.get() as f64 / genuine as f64
        }
    }

    /// Republishes the [`M_FLEET_COST_RATIO`] gauge in micro-units.
    fn refresh_fleet_cost_ratio(&self) {
        self.fleet_cost_ratio
            .set((self.fleet_cost_ratio() * RATIO_MICRO) as i64);
    }

    /// Sets the instantaneous queue depth (and bumps the high-water mark).
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
        self.max_queue_depth.fetch_max(depth as i64);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.get().max(0) as usize
    }

    /// Hands out the per-shard queue-depth gauges for shards
    /// `0..num_shards`. The scheduler fetches these once per drain and
    /// then publishes depths with plain atomic stores — no allocation,
    /// no mutex on the drain path (the old API replaced a whole
    /// `Mutex<Vec<usize>>` per tick).
    pub fn shard_depth_gauges(&self, num_shards: usize) -> Vec<Gauge> {
        self.shards_seen.fetch_max(num_shards, Ordering::Relaxed);
        (0..num_shards)
            .map(|s| {
                self.registry
                    .gauge(M_QUEUE_DEPTH, &[("shard", &s.to_string())])
            })
            .collect()
    }

    /// Per-shard queue depths as last published by the scheduler (empty
    /// before any sharded drain ran).
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        let n = self.shards_seen.load(Ordering::Relaxed);
        (0..n)
            .map(|s| {
                self.registry
                    .gauge(M_QUEUE_DEPTH, &[("shard", &s.to_string())])
                    .get()
                    .max(0) as usize
            })
            .collect()
    }

    /// Cache hit rate over all recorded submits.
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.get() as f64;
        let m = self.cache_misses.get() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Snapshot of every global counter plus latency percentiles
    /// (computed over the submit-latency histogram).
    pub fn snapshot(&self) -> GlobalMetrics {
        GlobalMetrics {
            submitted: self.submitted.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_hit_rate: self.cache_hit_rate(),
            genuine_served: self.genuine_served.get(),
            ghosts_processed: self.ghosts_processed.get(),
            queue_depth: self.queue_depth(),
            max_queue_depth: self.max_queue_depth.get().max(0) as usize,
            shard_queue_depths: self.shard_queue_depths(),
            p50_submit_us: self.submit_us.percentile(0.50),
            p99_submit_us: self.submit_us.percentile(0.99),
            engine_submits: self.engine_submits.get(),
            fleet_cost_ratio: self.fleet_cost_ratio(),
            planner_reuse: self.planner_reuse.get(),
            planner_coalesced: self.planner_coalesced.get(),
        }
    }
}

/// Serializable snapshot of the global counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalMetrics {
    /// Total cycle members resolved (cache + engine).
    pub submitted: u64,
    /// Lookups served from cache.
    pub cache_hits: u64,
    /// Lookups that reached the engine.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`.
    pub cache_hit_rate: f64,
    /// Genuine queries answered.
    pub genuine_served: u64,
    /// Ghost queries processed.
    pub ghosts_processed: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Per-shard queue depths as last published by the scheduler (empty
    /// until a drain has run; all zeros after one completes).
    pub shard_queue_depths: Vec<usize>,
    /// Median submit latency (µs).
    pub p50_submit_us: u64,
    /// 99th-percentile submit latency (µs).
    pub p99_submit_us: u64,
    /// Unique engine-side submissions (one per resolved queue entry).
    pub engine_submits: u64,
    /// Engine submissions per genuine query (υ_eff; 0 before traffic).
    pub fleet_cost_ratio: f64,
    /// Planner donor-reuse substitutions.
    pub planner_reuse: u64,
    /// Planned submissions coalesced into shared queue entries.
    pub planner_coalesced: u64,
}

/// Per-session privacy accounting, maintained by the session itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionMetrics {
    /// Session identifier.
    pub session: String,
    /// Protected searches served.
    pub cycles: u64,
    /// Total queries emitted (genuine + ghosts).
    pub queries_emitted: u64,
    /// Mean cycle length υ.
    pub mean_cycle_len: f64,
    /// Mean per-cycle exposure `max_{t∈U} B(t|C)`.
    pub mean_exposure: f64,
    /// Worst per-cycle exposure seen.
    pub worst_exposure: f64,
    /// Mean mask level `max_{t∈T\U} B(t|C)`.
    pub mean_mask_level: f64,
    /// Fraction of cycles whose `(ε1, ε2)` requirement was satisfied.
    pub satisfied_rate: f64,
    /// Exposure of the whole recorded trace (Equation 2 over the session).
    pub trace_exposure: f64,
}

/// Full service snapshot: global counters plus one entry per session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Global counters.
    pub global: GlobalMetrics,
    /// Per-session privacy metrics, sorted by session id.
    pub sessions: Vec<SessionMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let m = ServiceMetrics::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            m.record_submit(us, us <= 30, us == 10);
        }
        let snap = m.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 7);
        assert!((snap.cache_hit_rate - 0.3).abs() < 1e-12);
        assert_eq!(snap.genuine_served, 1);
        assert_eq!(snap.ghosts_processed, 9);
        // Values below 2×SUBBUCKETS sit in exact histogram buckets, so
        // these percentiles are exact, same as the old sorted sample.
        assert_eq!(snap.p50_submit_us, 50);
        assert_eq!(snap.p99_submit_us, 100);
    }

    #[test]
    fn queue_depth_high_water() {
        let m = ServiceMetrics::new();
        m.set_queue_depth(5);
        m.set_queue_depth(12);
        m.set_queue_depth(3);
        let snap = m.snapshot();
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.max_queue_depth, 12);
    }

    #[test]
    fn latency_memory_is_bounded_and_tail_exact_enough() {
        // The histogram covers the whole stream in fixed memory; unlike
        // the old reservoir there is no sampling, so the p99 of a known
        // stream is within the documented relative error.
        let m = ServiceMetrics::new();
        let n = 32_768u64;
        for i in 0..n {
            m.record_submit(i, false, false);
        }
        let snap = m.snapshot();
        assert_eq!(snap.submitted, n);
        let exact_p99 = (n as f64 * 0.99).ceil() as u64 - 1;
        let err = snap.p99_submit_us.abs_diff(exact_p99) as f64;
        assert!(
            err <= exact_p99 as f64 * toppriv_obs::RELATIVE_ERROR + 1.0,
            "p99 {} vs exact {exact_p99}",
            snap.p99_submit_us
        );
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let snap = ServiceMetrics::new().snapshot();
        assert_eq!(snap.p50_submit_us, 0);
        assert_eq!(snap.p99_submit_us, 0);
        assert_eq!(snap.cache_hit_rate, 0.0);
    }

    #[test]
    fn shard_gauges_publish_depths() {
        let m = ServiceMetrics::new();
        assert!(m.shard_queue_depths().is_empty());
        let gauges = m.shard_depth_gauges(3);
        gauges[0].set(4);
        gauges[2].set(9);
        assert_eq!(m.shard_queue_depths(), vec![4, 0, 9]);
        for g in &gauges {
            g.set(0);
        }
        assert_eq!(m.snapshot().shard_queue_depths, vec![0, 0, 0]);
    }

    #[test]
    fn fleet_cost_ratio_tracks_engine_submissions_per_genuine() {
        let m = ServiceMetrics::new();
        assert_eq!(m.fleet_cost_ratio(), 0.0);
        // One genuine query whose cycle resolved 7 unique queue entries.
        for _ in 0..7 {
            m.record_engine_submission();
        }
        m.record_submit(10, false, true);
        for _ in 0..6 {
            m.record_submit(10, false, false);
        }
        let snap = m.snapshot();
        assert_eq!(snap.engine_submits, 7);
        assert!((snap.fleet_cost_ratio - 7.0).abs() < 1e-12);
        // The live gauge carries the same value in micro-units.
        assert_eq!(
            m.registry().gauge(M_FLEET_COST_RATIO, &[]).get(),
            (7.0 * RATIO_MICRO) as i64
        );
        // Coalescing: the next genuine query shares entries, so only 2
        // fresh engine submissions land; the ratio drops to 9/2.
        m.record_engine_submission();
        m.record_engine_submission();
        m.record_submit(10, true, true);
        assert!((m.fleet_cost_ratio() - 4.5).abs() < 1e-12);
        m.record_planner_reuse();
        m.record_planner_coalesced();
        m.record_planner_coalesced();
        let snap = m.snapshot();
        assert_eq!(snap.planner_reuse, 1);
        assert_eq!(snap.planner_coalesced, 2);
    }

    #[test]
    fn registry_exposes_service_metrics() {
        let m = ServiceMetrics::new();
        m.record_submit(42, true, true);
        assert_eq!(m.registry().counter_total(M_SUBMITTED), 1);
        let text = toppriv_obs::render_prometheus(m.registry());
        assert!(text.contains("service_submits_total 1"));
        assert!(text.contains("service_submit_us_count 1"));
    }
}
