//! Server-side query-log analysis.
//!
//! The threat model (Section III-B) is an adversary who "analyzes the
//! search activity of the users after the fact". This module is that
//! analysis pipeline: it consumes the engine's [`LoggedQuery`] trace and
//! produces per-window topical boost timelines, flags topics whose
//! cumulative boost crosses a suspicion threshold, and detects bursts of
//! same-topic activity.
//!
//! When the engine is term-sharded, the adversary's view is sharded too:
//! each shard logs only the sub-query routed to it, stamped with a
//! *global* ordinal. A colluding adversary who can read every shard's
//! log reassembles the full trace with [`merge_shard_logs`] and analyzes
//! it exactly as before: the analysis operates on token posteriors, and
//! the reassembled *token* trace is identical to the single engine's.
//! (The raw-text channel is strictly narrower on the sharded tier —
//! shards receive terms, not strings, so out-of-vocabulary words are
//! visible only at the router — which makes the sharded adversary no
//! stronger than the one the privacy guarantee is certified against.)

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use toppriv_core::BeliefEngine;
use tsearch_lda::LdaModel;
use tsearch_search::LoggedQuery;

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogAnalyzerConfig {
    /// Sliding-window width in queries.
    pub window: usize,
    /// Boost threshold above which a topic is flagged in a window.
    pub flag_threshold: f64,
}

impl Default for LogAnalyzerConfig {
    fn default() -> Self {
        Self {
            window: 8,
            flag_threshold: 0.05,
        }
    }
}

/// One analyzed window of the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowAnalysis {
    /// Ordinal of the first query in the window.
    pub start: u64,
    /// Number of queries in the window.
    pub len: usize,
    /// The window's most boosted topic and its boost.
    pub top_topic: usize,
    /// `B(top_topic | window)`.
    pub top_boost: f64,
    /// Topics whose boost exceeds the flag threshold.
    pub flagged: Vec<usize>,
}

/// Whole-trace analysis output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogAnalysis {
    /// Per-window results, in order.
    pub windows: Vec<WindowAnalysis>,
    /// `B(t | whole trace)` for every topic.
    pub trace_boosts: Vec<f64>,
    /// Topics flagged in at least `min_windows` windows, with their
    /// window counts — the adversary's shortlist of suspected interests.
    pub persistent_topics: Vec<(usize, usize)>,
}

/// Reassembles a global query trace from per-shard logs (the output of
/// `ShardedEngine::shard_logs`). Entries sharing an ordinal are the
/// per-shard slices of one client submission: their tokens are unioned
/// (sorted — the engine treats queries as bags of words) and their text
/// fragments joined in shard order. Entries a shard has already trimmed
/// under its capacity bound are simply missing from that submission's
/// reconstruction, exactly as a real colluding adversary would see.
pub fn merge_shard_logs(shard_logs: &[Vec<LoggedQuery>]) -> Vec<LoggedQuery> {
    use std::collections::BTreeMap;
    let mut merged: BTreeMap<u64, LoggedQuery> = BTreeMap::new();
    for entries in shard_logs {
        for entry in entries {
            match merged.entry(entry.ordinal) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(entry.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    let q = o.get_mut();
                    q.tokens.extend(entry.tokens.iter().copied());
                    if !entry.text.is_empty() {
                        if !q.text.is_empty() {
                            q.text.push(' ');
                        }
                        q.text.push_str(&entry.text);
                    }
                }
            }
        }
    }
    merged
        .into_values()
        .map(|mut q| {
            q.tokens.sort_unstable();
            q
        })
        .collect()
}

/// The analyzer: an LDA-equipped adversary over the query log.
pub struct LogAnalyzer {
    belief: BeliefEngine,
    config: LogAnalyzerConfig,
}

impl LogAnalyzer {
    /// Creates an analyzer with the given model and configuration.
    pub fn new(model: Arc<LdaModel>, config: LogAnalyzerConfig) -> Self {
        Self {
            belief: BeliefEngine::new(model),
            config,
        }
    }

    /// Analyzes a query log: sliding windows plus whole-trace aggregation.
    pub fn analyze(&self, log: &[LoggedQuery], min_windows: usize) -> LogAnalysis {
        let posteriors: Vec<Vec<f64>> = log
            .iter()
            .map(|q| self.belief.posterior(&q.tokens))
            .collect();
        let k = self.belief.num_topics();
        let window = self.config.window.max(1);
        let mut windows = Vec::new();
        let mut flag_counts = vec![0usize; k];
        let mut start = 0usize;
        while start < posteriors.len() {
            let end = (start + window).min(posteriors.len());
            let slice = &posteriors[start..end];
            let boosts = self.belief.cycle_boost(slice);
            let (top_topic, top_boost) = boosts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(t, &b)| (t, b))
                .unwrap_or((0, 0.0));
            let flagged: Vec<usize> = boosts
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b > self.config.flag_threshold)
                .map(|(t, _)| t)
                .collect();
            for &t in &flagged {
                flag_counts[t] += 1;
            }
            windows.push(WindowAnalysis {
                start: log[start].ordinal,
                len: end - start,
                top_topic,
                top_boost,
                flagged,
            });
            start = end;
        }
        let trace_boosts = if posteriors.is_empty() {
            vec![0.0; k]
        } else {
            self.belief.cycle_boost(&posteriors)
        };
        let mut persistent_topics: Vec<(usize, usize)> = flag_counts
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c >= min_windows.max(1))
            .collect();
        persistent_topics.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        LogAnalysis {
            windows,
            trace_boosts,
            persistent_topics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toppriv_core::{GhostConfig, GhostGenerator, PrivacyRequirement};
    use tsearch_lda::{LdaConfig, LdaTrainer};
    use tsearch_text::TermId;

    fn trained_model() -> Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..120u32 {
            let base = (d % 4) * 8;
            docs.push((0..40).map(|i| base + (i % 8)).collect::<Vec<TermId>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        Arc::new(LdaTrainer::train(
            &refs,
            32,
            LdaConfig {
                iterations: 80,
                alpha: Some(0.3),
                ..LdaConfig::with_topics(4)
            },
        ))
    }

    fn log_entry(ordinal: u64, tokens: Vec<TermId>) -> LoggedQuery {
        LoggedQuery {
            ordinal,
            text: String::new(),
            tokens,
        }
    }

    #[test]
    fn unprotected_burst_is_flagged() {
        let model = trained_model();
        let analyzer = LogAnalyzer::new(model.clone(), LogAnalyzerConfig::default());
        // Ten raw queries, all on block 0.
        let log: Vec<LoggedQuery> = (0..10).map(|i| log_entry(i, vec![0, 1, 2, 3])).collect();
        let analysis = analyzer.analyze(&log, 1);
        assert!(!analysis.persistent_topics.is_empty(), "burst must be seen");
        let top = analysis.persistent_topics[0].0;
        // The flagged topic should be the block-0 topic.
        let belief = BeliefEngine::new(model.clone());
        let boosts = belief.boost(&[0, 1, 2, 3]);
        let true_top = (0..4)
            .max_by(|&a, &b| boosts[a].partial_cmp(&boosts[b]).unwrap())
            .unwrap();
        assert_eq!(top, true_top);
    }

    #[test]
    fn protected_trace_is_not_flagged() {
        let model = trained_model();
        let generator = GhostGenerator::new(
            BeliefEngine::new(model.clone()),
            PrivacyRequirement::new(0.10, 0.03).unwrap(),
            GhostConfig::default(),
        );
        let mut log = Vec::new();
        let mut ordinal = 0u64;
        let mut intent_topic = None;
        for _ in 0..5 {
            let result = generator.generate(&[0, 1, 2, 3]);
            intent_topic = result.intention.first().copied().or(intent_topic);
            for q in &result.cycle {
                log.push(log_entry(ordinal, q.tokens.clone()));
                ordinal += 1;
            }
        }
        let analyzer = LogAnalyzer::new(
            model.clone(),
            LogAnalyzerConfig {
                window: 8,
                flag_threshold: 0.05,
            },
        );
        let analysis = analyzer.analyze(&log, 2);
        if let Some(t) = intent_topic {
            let persistent: Vec<usize> =
                analysis.persistent_topics.iter().map(|&(t, _)| t).collect();
            assert!(
                !persistent.contains(&t) || persistent.len() > 1,
                "the genuine topic must not be the sole persistent flag: {persistent:?}"
            );
        }
    }

    #[test]
    fn merge_shard_logs_reassembles_the_trace() {
        // Two shards, two submissions: ordinal 0 split across both
        // shards, ordinal 1 entirely on shard 1.
        let shard0 = vec![log_entry(0, vec![4, 0])];
        let shard1 = vec![
            LoggedQuery {
                ordinal: 0,
                text: "beta".into(),
                tokens: vec![2],
            },
            log_entry(1, vec![5, 3]),
        ];
        let merged = merge_shard_logs(&[shard0, shard1]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].ordinal, 0);
        assert_eq!(merged[0].tokens, vec![0, 2, 4], "union, sorted");
        assert_eq!(merged[0].text, "beta");
        assert_eq!(merged[1].tokens, vec![3, 5]);
        assert!(merge_shard_logs(&[]).is_empty());
    }

    #[test]
    fn sharded_adversary_sees_the_same_trace_as_single() {
        use tsearch_search::{ScoringModel, SearchEngine, ShardedEngine};
        use tsearch_text::{Analyzer, Vocabulary};

        let mut vocab = Vocabulary::new();
        let words: Vec<String> = (0..32).map(|i| format!("term{i:02}x")).collect();
        for w in &words {
            vocab.intern(w);
        }
        let mut docs: Vec<Vec<TermId>> = Vec::new();
        let mut texts: Vec<String> = Vec::new();
        for d in 0..60u32 {
            let base = (d % 4) * 8;
            let tokens: Vec<TermId> = (0..24).map(|i| base + (i % 8)).collect();
            texts.push(
                tokens
                    .iter()
                    .map(|&t| words[t as usize].as_str())
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            docs.push(tokens);
        }
        for d in &docs {
            vocab.observe_document(d);
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let single = SearchEngine::build(
            &refs,
            &texts,
            Analyzer::new(),
            vocab.clone(),
            ScoringModel::TfIdfCosine,
        );
        let sharded = ShardedEngine::build(
            &refs,
            &texts,
            Analyzer::new(),
            vocab,
            ScoringModel::TfIdfCosine,
            4,
        );
        // The same submission stream hits both engines.
        let stream: Vec<Vec<TermId>> =
            vec![vec![0, 1, 2], vec![8, 9], vec![0, 9, 16, 25], vec![24]];
        for q in &stream {
            single.search_tokens(q, 5);
            sharded.search_tokens(q, 5);
        }
        let merged = merge_shard_logs(&sharded.shard_logs());
        let reference = single.query_log();
        assert_eq!(merged.len(), reference.len());
        for (m, r) in merged.iter().zip(&reference) {
            assert_eq!(m.ordinal, r.ordinal);
            let mut expected = r.tokens.clone();
            expected.sort_unstable();
            assert_eq!(m.tokens, expected, "ordinal {}", m.ordinal);
        }
        // And the analyzer reaches the same conclusions over both views
        // (posteriors are bag-of-words, so token order is irrelevant).
        let model = trained_model();
        let analyzer = LogAnalyzer::new(model, LogAnalyzerConfig::default());
        let a = analyzer.analyze(&merged, 1);
        let b = analyzer.analyze(&reference, 1);
        assert_eq!(a.persistent_topics, b.persistent_topics);
        for (x, y) in a.trace_boosts.iter().zip(&b.trace_boosts) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_log() {
        let model = trained_model();
        let analyzer = LogAnalyzer::new(model.clone(), LogAnalyzerConfig::default());
        let analysis = analyzer.analyze(&[], 1);
        assert!(analysis.windows.is_empty());
        assert!(analysis.persistent_topics.is_empty());
        assert_eq!(analysis.trace_boosts.len(), 4);
    }

    #[test]
    fn window_partitioning() {
        let model = trained_model();
        let analyzer = LogAnalyzer::new(
            model.clone(),
            LogAnalyzerConfig {
                window: 3,
                flag_threshold: 0.9,
            },
        );
        let log: Vec<LoggedQuery> = (0..7).map(|i| log_entry(i, vec![0, 1])).collect();
        let analysis = analyzer.analyze(&log, 1);
        assert_eq!(analysis.windows.len(), 3); // 3 + 3 + 1
        assert_eq!(analysis.windows[0].len, 3);
        assert_eq!(analysis.windows[2].len, 1);
        assert_eq!(analysis.windows[2].start, 6);
    }
}
