//! Experiment `classifier` (extension beyond §IV-D): a supervised
//! naive-Bayes adversary trained on the ground-truth document taxonomy.
//!
//! The enterprise hosting the corpus can always train a topic classifier
//! on its own documents — no LDA involved — and run it over the query
//! stream. The experiment measures, for TopPriv and for TrackMeNot-style
//! random ghosts:
//!
//! - the classifier's accuracy on the raw genuine queries (oracle
//!   reference — it should be high, otherwise the attack is a straw man);
//! - how often the pooled cycle bag still classifies to the user's true
//!   topic (intention recovery);
//! - how often the most confidently classified query of a cycle is the
//!   genuine one (genuine identification).

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use toppriv_adversary::{run_classifier_attack, NaiveBayes};
use toppriv_baselines::{TrackMeNot, TrackMeNotConfig};
use toppriv_core::{
    BeliefEngine, CycleQuery, CycleResult, GhostConfig, GhostGenerator, PrivacyMetrics,
    PrivacyRequirement,
};

/// Wraps a bare query list into the [`CycleResult`] shape the attack
/// evaluator consumes (only `cycle` and `genuine_index` matter to it).
fn as_cycle(queries: Vec<Vec<u32>>, genuine_index: usize) -> CycleResult {
    let cycle: Vec<CycleQuery> = queries
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| CycleQuery {
            tokens,
            is_genuine: i == genuine_index,
            masking_topic: None,
        })
        .collect();
    CycleResult {
        cycle,
        genuine_index,
        intention: vec![],
        solo_boosts: vec![],
        cycle_boosts: vec![],
        masking_topics: vec![],
        ineffective_topics: vec![],
        satisfied: false,
        metrics: PrivacyMetrics::default(),
    }
}

/// Runs the supervised-classifier attack experiment.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    // Train the adversary on the ground-truth labels: each document's
    // dominant mixture topic.
    let labeled: Vec<(&[u32], usize)> = ctx
        .corpus
        .docs
        .iter()
        .map(|d| {
            let label = d
                .mixture
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weight"))
                .map(|&(t, _)| t)
                .expect("non-empty mixture");
            (d.tokens.as_slice(), label)
        })
        .collect();
    let nb = NaiveBayes::train(
        &labeled,
        ctx.corpus.num_topics(),
        ctx.corpus.vocab.len(),
        1.0,
    );

    let queries = &ctx.queries[..ctx.scale.adversary_queries.min(ctx.queries.len())];
    let truths: Vec<usize> = queries.iter().map(|q| q.target_topics[0]).collect();

    // TopPriv cycles from the default model.
    let generator = GhostGenerator::new(
        BeliefEngine::new(ctx.default_model().clone()),
        PrivacyRequirement::paper_default(),
        GhostConfig::default(),
    );
    let toppriv_cycles: Vec<CycleResult> = queries
        .iter()
        .map(|q| generator.generate(&q.tokens))
        .collect();

    // TrackMeNot cycles matched in length to the TopPriv ones.
    let tmn = TrackMeNot::new(ctx.corpus.vocab.len(), TrackMeNotConfig::default());
    let tmn_cycles: Vec<CycleResult> = queries
        .iter()
        .map(|q| {
            let (cycle, genuine_index) = tmn.cycle(&q.tokens);
            as_cycle(cycle, genuine_index)
        })
        .collect();

    let mut table = ResultTable::new(
        "adv2_classifier_attack",
        "Supervised naive-Bayes adversary trained on ground-truth labels \
         (default model cycles, eps=(5%,1%))",
        vec![
            "scheme".into(),
            "unprotected_recovery".into(),
            "cycle_recovery".into(),
            "topic_chance".into(),
            "genuine_ident".into(),
            "genuine_chance".into(),
            "cycles".into(),
        ],
    );
    for (scheme, cycles) in [("toppriv", &toppriv_cycles), ("trackmenot", &tmn_cycles)] {
        let r = run_classifier_attack(&nb, cycles, &truths);
        table.push_row(vec![
            scheme.into(),
            f3(r.unprotected_recovery),
            f3(r.cycle_recovery),
            f3(r.topic_chance),
            f3(r.genuine_identification),
            f3(r.genuine_chance),
            r.cycles.to_string(),
        ]);
    }
    vec![table]
}
