//! TrackMeNot-style ghost queries.
//!
//! The paper's introduction points out that randomly generated ghost
//! queries (reference \[9\]) "often can be ruled out easily because their
//! term combinations are not meaningful", and that a random ghost may not
//! even mask the topic. This module implements that baseline so the
//! coherence/exposure ablation can quantify both failure modes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use tsearch_text::TermId;

/// TrackMeNot generator parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackMeNotConfig {
    /// Ghost queries per user query.
    pub num_ghosts: usize,
    /// Ghost length as min multiple of `|qu|`.
    pub min_len_mult: f64,
    /// Ghost length as max multiple of `|qu|`.
    pub max_len_mult: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrackMeNotConfig {
    fn default() -> Self {
        Self {
            num_ghosts: 4,
            min_len_mult: 1.0,
            max_len_mult: 2.0,
            seed: 0x7141,
        }
    }
}

/// Uniform-random ghost query generator over the vocabulary.
#[derive(Debug, Clone)]
pub struct TrackMeNot {
    vocab_size: usize,
    config: TrackMeNotConfig,
}

impl TrackMeNot {
    /// Creates a generator for a vocabulary of the given size.
    pub fn new(vocab_size: usize, config: TrackMeNotConfig) -> Self {
        assert!(vocab_size > 0, "need a vocabulary");
        Self { vocab_size, config }
    }

    /// Generates the ghost queries for one user query (the user query
    /// itself is not included).
    pub fn ghosts(&self, user_tokens: &[TermId]) -> Vec<Vec<TermId>> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ token_hash(user_tokens));
        let user_len = user_tokens.len().max(1);
        (0..self.config.num_ghosts)
            .map(|_| {
                let mult = if self.config.max_len_mult > self.config.min_len_mult {
                    rng.gen_range(self.config.min_len_mult..self.config.max_len_mult)
                } else {
                    self.config.min_len_mult
                };
                let len = ((user_len as f64 * mult).round() as usize).max(1);
                let mut tokens = Vec::with_capacity(len);
                let mut used = HashSet::with_capacity(len * 2);
                while tokens.len() < len && used.len() < self.vocab_size {
                    let t = rng.gen_range(0..self.vocab_size) as TermId;
                    if used.insert(t) {
                        tokens.push(t);
                    }
                }
                tokens.sort_unstable();
                tokens
            })
            .collect()
    }

    /// Generates the full cycle: ghosts plus the (sorted) user query, in a
    /// shuffled order. Returns `(cycle, genuine_index)`.
    pub fn cycle(&self, user_tokens: &[TermId]) -> (Vec<Vec<TermId>>, usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ token_hash(user_tokens) ^ 0xC1C);
        let mut cycle = self.ghosts(user_tokens);
        let mut user = user_tokens.to_vec();
        user.sort_unstable();
        cycle.push(user.clone());
        for i in (1..cycle.len()).rev() {
            let j = rng.gen_range(0..=i);
            cycle.swap(i, j);
        }
        let genuine_index = cycle.iter().position(|q| q == &user).expect("present");
        (cycle, genuine_index)
    }
}

fn token_hash(tokens: &[TermId]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    tokens.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_ghosts() {
        let tmn = TrackMeNot::new(1000, TrackMeNotConfig::default());
        let ghosts = tmn.ghosts(&[1, 2, 3]);
        assert_eq!(ghosts.len(), 4);
        for g in &ghosts {
            assert!(g.len() >= 3, "at least |qu| terms");
            assert!(g.len() <= 6 + 1);
            let set: HashSet<_> = g.iter().collect();
            assert_eq!(set.len(), g.len(), "no duplicates");
        }
    }

    #[test]
    fn deterministic_per_query() {
        let tmn = TrackMeNot::new(1000, TrackMeNotConfig::default());
        assert_eq!(tmn.ghosts(&[1, 2]), tmn.ghosts(&[1, 2]));
        assert_ne!(tmn.ghosts(&[1, 2]), tmn.ghosts(&[3, 4]));
    }

    #[test]
    fn cycle_contains_user_query_once() {
        let tmn = TrackMeNot::new(500, TrackMeNotConfig::default());
        let (cycle, idx) = tmn.cycle(&[10, 5, 7]);
        assert_eq!(cycle.len(), 5);
        assert_eq!(cycle[idx], vec![5, 7, 10]);
        assert_eq!(cycle.iter().filter(|q| **q == vec![5, 7, 10]).count(), 1);
    }

    #[test]
    fn tiny_vocab_terminates() {
        let tmn = TrackMeNot::new(
            2,
            TrackMeNotConfig {
                num_ghosts: 1,
                min_len_mult: 5.0,
                max_len_mult: 5.0,
                ..TrackMeNotConfig::default()
            },
        );
        let ghosts = tmn.ghosts(&[0]);
        assert!(ghosts[0].len() <= 2, "cannot exceed vocabulary");
    }
}
