//! Microbenchmarks of LDA training sweeps and fold-in query inference —
//! the computational core behind Figures 2(d)/3(d) (generation time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use toppriv_bench::Scale;
use tsearch_corpus::SyntheticCorpus;
use tsearch_lda::{Inferencer, LdaConfig, LdaTrainer};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(Scale::quick().corpus)
}

fn bench_training_sweep(c: &mut Criterion) {
    let corpus = corpus();
    let docs = corpus.token_docs();
    let tokens: u64 = docs.iter().map(|d| d.len() as u64).sum();
    let mut group = c.benchmark_group("lda_gibbs_sweep");
    group.sample_size(10);
    for &k in &[10usize, 40, 100] {
        group.throughput(Throughput::Elements(tokens));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut trainer = LdaTrainer::new(
                &docs,
                corpus.vocab.len(),
                LdaConfig {
                    iterations: 1,
                    ..LdaConfig::with_topics(k)
                },
            );
            b.iter(|| trainer.sweep());
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let corpus = corpus();
    let docs = corpus.token_docs();
    let mut group = c.benchmark_group("lda_query_inference");
    group.sample_size(30);
    for &k in &[10usize, 40, 100] {
        let model = LdaTrainer::train(
            &docs,
            corpus.vocab.len(),
            LdaConfig {
                iterations: 15,
                ..LdaConfig::with_topics(k)
            },
        );
        let query: Vec<u32> = corpus.docs[0].tokens[..12.min(corpus.docs[0].tokens.len())].to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(k), &model, |b, m| {
            let inf = Inferencer::new(m);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(inf.infer_with_seed(&query, seed))
            })
        });
    }
    group.finish();
}

/// Ablation for the Section V-A reduced-training extension: full-data
/// training versus document-sampled + vocabulary-pruned training at the
/// same K and iteration count.
fn bench_reduced_training(c: &mut Criterion) {
    use tsearch_lda::{ReducedModel, ReductionConfig};
    let corpus = corpus();
    let docs = corpus.token_docs();
    let mut group = c.benchmark_group("lda_reduced_training");
    group.sample_size(10);
    for &(doc_rate, vocab_rate) in &[(1.0f64, 1.0f64), (0.5, 0.5), (0.25, 0.25)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{doc_rate}_v{vocab_rate}")),
            &(doc_rate, vocab_rate),
            |b, &(doc_rate, vocab_rate)| {
                b.iter(|| {
                    black_box(ReducedModel::train(
                        &docs,
                        corpus.vocab.len(),
                        LdaConfig {
                            iterations: 5,
                            ..LdaConfig::with_topics(20)
                        },
                        ReductionConfig {
                            doc_rate,
                            vocab_rate,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training_sweep,
    bench_inference,
    bench_reduced_training
);
criterion_main!(benches);
