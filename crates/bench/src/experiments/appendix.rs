//! Experiment `apxA`: the Appendix A topic-model comparison.
//!
//! The paper selects LDA over LSA/LSI (memory blow-up on large corpora)
//! and pLSA (no principled posterior for unseen queries). This experiment
//! puts numbers behind both claims on our corpus:
//!
//! - **fold-in quality**: for each workload query, does the model's
//!   posterior concentrate on the topic aligned with the query's
//!   ground-truth topic? (LDA fold-in vs pLSA heuristic re-fit.)
//! - **memory**: the dense `V×D` matrix LSA would need vs the sparse
//!   structures LDA/pLSA train from.

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use toppriv_baselines::{LsiConfig, LsiModel};
use tsearch_lda::{Inferencer, PlsaConfig, PlsaModel};

/// Alignment: for a model's topic set, the topic that best matches a
/// ground-truth topic is the one with the highest summed probability over
/// the ground-truth topic's top terms.
fn align_topic(
    top_terms: &[(u32, f64)],
    num_topics: usize,
    phi: impl Fn(usize, u32) -> f64,
) -> usize {
    (0..num_topics)
        .max_by(|&a, &b| {
            let sa: f64 = top_terms.iter().map(|&(w, _)| phi(a, w)).sum();
            let sb: f64 = top_terms.iter().map(|&(w, _)| phi(b, w)).sum();
            sa.partial_cmp(&sb).expect("finite")
        })
        .unwrap_or(0)
}

/// Runs the comparison on the default-K models.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let k = ctx.scale.default_k;
    let docs = ctx.corpus.token_docs();
    let vocab_size = ctx.corpus.vocab.len();
    let lda = ctx.default_model();

    let t0 = std::time::Instant::now();
    let plsa = PlsaModel::train(
        &docs,
        vocab_size,
        PlsaConfig {
            iterations: (ctx.scale.lda_iterations / 2).max(5),
            ..PlsaConfig::with_topics(k)
        },
    );
    let plsa_secs = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let lsi = LsiModel::train(&docs, vocab_size, LsiConfig::default());
    let lsi_secs = t1.elapsed().as_secs_f64();

    // Fold-in quality: posterior mass on the aligned topic.
    let inferencer = Inferencer::new(lda);
    let mut lda_mass = 0.0;
    let mut plsa_mass = 0.0;
    let mut scored = 0usize;
    for q in ctx.sweep_queries() {
        let gt = &ctx.corpus.topics[q.target_topics[0]];
        let top = gt.top_terms(20);
        let lda_topic = align_topic(top, k, |t, w| lda.phi(t, w));
        let plsa_topic = align_topic(top, k, |t, w| plsa.phi(t, w));
        let lda_post = inferencer.infer(&q.tokens);
        let plsa_post = plsa.heuristic_fold_in(&q.tokens, 20);
        lda_mass += lda_post[lda_topic];
        plsa_mass += plsa_post[plsa_topic];
        scored += 1;
    }
    let n = scored.max(1) as f64;

    // Memory accounting: dense LSA input vs model footprints.
    let dense_lsa_bytes = vocab_size as u64 * ctx.corpus.num_docs() as u64 * 8;
    let lda_bytes = lda.size_breakdown().total() as u64;
    let plsa_bytes = (plsa.num_topics() * plsa.vocab_size() * 4) as u64
        + (plsa.num_topics() * ctx.corpus.num_docs() * 4) as u64;
    let lsi_bytes = (vocab_size * lsi.factors() * 8) as u64;

    let mut table = ResultTable::new(
        "apxA_topic_models",
        format!("Appendix A: topic models at K={k} (LSI uses 30 factors)"),
        vec![
            "model".into(),
            "query_posterior_on_true_topic".into(),
            "train_secs".into(),
            "model_MB".into(),
            "dense_input_MB".into(),
        ],
    );
    let mb = |b: u64| format!("{:.1}", b as f64 / (1024.0 * 1024.0));
    table.push_row(vec![
        "LDA (collapsed Gibbs)".into(),
        f3(lda_mass / n),
        "(cached)".into(),
        mb(lda_bytes),
        "sparse".into(),
    ]);
    table.push_row(vec![
        "pLSA (EM, heuristic fold-in)".into(),
        f3(plsa_mass / n),
        format!("{plsa_secs:.1}"),
        mb(plsa_bytes),
        "sparse".into(),
    ]);
    table.push_row(vec![
        "LSI/LSA (subspace iteration)".into(),
        "n/a (no posterior)".into(),
        format!("{lsi_secs:.1}"),
        mb(lsi_bytes),
        mb(dense_lsa_bytes),
    ]);
    vec![table]
}
