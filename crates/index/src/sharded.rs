//! Term-sharded inverted index.
//!
//! At fleet scale the search tier — not the trusted client — is the
//! bottleneck: every protected query multiplies engine load by the cycle
//! length υ. [`ShardedIndex`] partitions the postings lists of a single
//! [`InvertedIndex`] across N shards by *term hash*, so independent
//! worker pools can serve disjoint slices of the vocabulary with no
//! shared mutable state. [`ShardRouter`] is the pure routing function
//! both the index and the service scheduler use to map a query's terms
//! to the shard set it must touch.
//!
//! Every shard is itself a complete [`InvertedIndex`] over the *full*
//! document collection: it owns the postings lists of its terms and
//! carries the global document-length table, so per-term scoring
//! statistics (`df`, `idf`, `avg_doc_len`, `max_tf`) computed against a
//! shard are identical to those of the unsharded index. Terms owned by
//! other shards simply have empty lists. This is what makes sharded
//! evaluation *exactly* equivalent to single-index evaluation: a term's
//! entire postings list lives on exactly one shard.

use crate::index::InvertedIndex;
use crate::postings::PostingsList;
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// Gauge name: postings pairs owned by one shard (`shard` label).
pub const M_SHARD_POSTINGS: &str = "index_shard_postings";
/// Gauge name: terms with a non-empty list on one shard (`shard` label).
pub const M_SHARD_TERMS: &str = "index_shard_terms";

/// Maps terms to shards by a stable hash of the term id.
///
/// The routing function is deterministic and build-independent: the same
/// `(term, num_shards)` pair always lands on the same shard, so routers
/// can be reconstructed anywhere (client, scheduler, engine) from the
/// shard count alone.
///
/// ## Example
///
/// ```
/// use tsearch_index::ShardRouter;
///
/// let router = ShardRouter::new(4);
/// assert_eq!(router.num_shards(), 4);
/// // A term's shard is stable...
/// assert_eq!(router.shard_of(7), router.shard_of(7));
/// // ...and a query's shard set is sorted and deduplicated.
/// let shards = router.shard_set([7, 7, 9, 1].iter().copied());
/// assert!(shards.windows(2).all(|w| w[0] < w[1]));
/// assert!(shards.iter().all(|&s| s < 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards (clamped to at least 1).
    pub fn new(num_shards: usize) -> Self {
        ShardRouter {
            num_shards: num_shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `term`'s postings list.
    pub fn shard_of(&self, term: TermId) -> usize {
        (splitmix64(term as u64) % self.num_shards as u64) as usize
    }

    /// The sorted, deduplicated set of shards a query over `terms` must
    /// touch. Empty iff `terms` is empty.
    pub fn shard_set(&self, terms: impl IntoIterator<Item = TermId>) -> Vec<usize> {
        let mut shards: Vec<usize> = terms.into_iter().map(|t| self.shard_of(t)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// SplitMix64 finalizer: a fast, well-mixed stable hash for shard
/// assignment (term ids are dense small integers, so a bare modulus
/// would stripe adjacent vocabulary entries onto adjacent shards).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An inverted index partitioned into term-hash shards.
///
/// Construction splits an ordinary [`InvertedIndex`] without re-encoding
/// any postings bytes: each list is *moved* to its owning shard. Each
/// shard keeps the global document-length table, so any scorer that is
/// correct against a single index is correct against a shard for the
/// terms that shard owns.
///
/// ## Example
///
/// ```
/// use tsearch_index::{InvertedIndex, ShardedIndex};
///
/// let docs: Vec<Vec<u32>> = vec![vec![0, 1, 1], vec![1, 2]];
/// let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
/// let sharded = ShardedIndex::build(&refs, 3, 2);
///
/// // Global statistics are preserved exactly...
/// let single = InvertedIndex::build(&refs, 3);
/// assert_eq!(sharded.num_docs(), single.num_docs());
/// assert_eq!(sharded.doc_freq(1), single.doc_freq(1));
/// assert_eq!(sharded.total_postings(), single.total_postings());
/// // ...and each term's full postings list lives on exactly one shard.
/// let owner = sharded.router().shard_of(1);
/// assert_eq!(sharded.shard(owner).doc_freq(1), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedIndex {
    router: ShardRouter,
    shards: Vec<InvertedIndex>,
}

impl ShardedIndex {
    /// Builds a sharded index directly from token-id documents.
    pub fn build(docs: &[&[TermId]], vocab_size: usize, num_shards: usize) -> Self {
        Self::from_single(InvertedIndex::build(docs, vocab_size), num_shards)
    }

    /// Shards an existing single index by moving each term's postings
    /// list to its hash-owning shard. Non-owned terms get empty lists, so
    /// every shard addresses the full `TermId` space.
    pub fn from_single(index: InvertedIndex, num_shards: usize) -> Self {
        let router = ShardRouter::new(num_shards);
        let n = router.num_shards();
        let num_terms = index.num_terms();
        let (postings, doc_lens, total_tokens, max_tfs) = index.into_parts();
        let mut shard_postings: Vec<Vec<PostingsList>> = (0..n)
            .map(|_| vec![PostingsList::default(); num_terms])
            .collect();
        let mut shard_max_tfs: Vec<Vec<u32>> = (0..n).map(|_| vec![0u32; num_terms]).collect();
        let mut shard_terms = vec![0i64; n];
        for (term, (list, max_tf)) in postings.into_iter().zip(max_tfs).enumerate() {
            let s = router.shard_of(term as TermId);
            if !list.is_empty() {
                shard_terms[s] += 1;
            }
            shard_postings[s][term] = list;
            shard_max_tfs[s][term] = max_tf;
        }
        let shards: Vec<InvertedIndex> = shard_postings
            .into_iter()
            .zip(shard_max_tfs)
            .map(|(postings, max_tfs)| {
                InvertedIndex::from_parts(postings, doc_lens.clone(), total_tokens, max_tfs)
            })
            .collect();
        // Publish the postings balance so operators can see term-hash skew
        // without walking the index. Build is cold path; the registry lock
        // here never touches query-time code.
        let registry = toppriv_obs::global();
        for (s, shard) in shards.iter().enumerate() {
            let label = s.to_string();
            registry
                .gauge(M_SHARD_POSTINGS, &[("shard", &label)])
                .set(shard.total_postings() as i64);
            registry
                .gauge(M_SHARD_TERMS, &[("shard", &label)])
                .set(shard_terms[s]);
        }
        ShardedIndex { router, shards }
    }

    /// The routing function in use.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `shard_id` (a full [`InvertedIndex`] owning the
    /// postings of its hash slice of the vocabulary).
    pub fn shard(&self, shard_id: usize) -> &InvertedIndex {
        &self.shards[shard_id]
    }

    /// All shards, in shard-id order.
    pub fn shards(&self) -> &[InvertedIndex] {
        &self.shards
    }

    /// The sorted shard set a query over `terms` touches.
    pub fn shard_set(&self, terms: impl IntoIterator<Item = TermId>) -> Vec<usize> {
        self.router.shard_set(terms)
    }

    /// Number of indexed documents (global).
    pub fn num_docs(&self) -> usize {
        self.shards[0].num_docs()
    }

    /// Number of terms (the full vocabulary; every shard addresses it).
    pub fn num_terms(&self) -> usize {
        self.shards[0].num_terms()
    }

    /// Length (token count) of document `doc_id` (global).
    pub fn doc_len(&self, doc_id: u32) -> u32 {
        self.shards[0].doc_len(doc_id)
    }

    /// Mean document length (global).
    pub fn avg_doc_len(&self) -> f64 {
        self.shards[0].avg_doc_len()
    }

    /// Total token occurrences indexed (global).
    pub fn total_tokens(&self) -> u64 {
        self.shards[0].total_tokens()
    }

    /// Total postings pairs across all shards (equals the single index's).
    pub fn total_postings(&self) -> u64 {
        self.shards.iter().map(|s| s.total_postings()).sum()
    }

    /// The postings list of `term`, read from its owning shard.
    pub fn postings(&self, term: TermId) -> &PostingsList {
        self.owner(term).postings(term)
    }

    /// Document frequency of `term` (global — the owning shard holds the
    /// term's entire list).
    pub fn doc_freq(&self, term: TermId) -> usize {
        self.owner(term).doc_freq(term)
    }

    /// Inverse document frequency of `term` (identical to the unsharded
    /// index's, since `N` and `df` are both global on the owning shard).
    pub fn idf(&self, term: TermId) -> f64 {
        self.owner(term).idf(term)
    }

    /// Maximum term frequency of `term` across all documents.
    pub fn max_tf(&self, term: TermId) -> u32 {
        self.owner(term).max_tf(term)
    }

    /// The shard owning `term`.
    pub fn owner(&self, term: TermId) -> &InvertedIndex {
        &self.shards[self.router.shard_of(term)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<TermId>> {
        vec![
            vec![0, 1, 2, 0],
            vec![1, 3],
            vec![0, 3, 3, 3],
            vec![],
            vec![4, 4, 2, 1, 0],
        ]
    }

    fn both(num_shards: usize) -> (InvertedIndex, ShardedIndex) {
        let docs = docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        (
            InvertedIndex::build(&refs, 6),
            ShardedIndex::build(&refs, 6, num_shards),
        )
    }

    #[test]
    fn router_is_stable_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            let router = ShardRouter::new(n);
            for term in 0..1000u32 {
                let s = router.shard_of(term);
                assert!(s < n);
                assert_eq!(s, router.shard_of(term), "routing must be stable");
            }
        }
    }

    #[test]
    fn router_clamps_zero_shards() {
        let router = ShardRouter::new(0);
        assert_eq!(router.num_shards(), 1);
        assert_eq!(router.shard_of(42), 0);
    }

    #[test]
    fn router_spreads_terms() {
        // With 8 shards and 4096 terms, every shard should own a
        // reasonable slice (splitmix64 is well-mixed).
        let router = ShardRouter::new(8);
        let mut counts = [0usize; 8];
        for term in 0..4096u32 {
            counts[router.shard_of(term)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 8 / 2 && c < 4096 / 8 * 2,
                "shard {s} owns a pathological slice: {c}"
            );
        }
    }

    #[test]
    fn shard_set_is_sorted_unique() {
        let router = ShardRouter::new(4);
        let set = router.shard_set([0u32, 1, 2, 3, 4, 5, 0, 1].iter().copied());
        assert!(set.windows(2).all(|w| w[0] < w[1]));
        assert!(router.shard_set(std::iter::empty()).is_empty());
    }

    #[test]
    fn every_statistic_matches_the_single_index() {
        for n in [1usize, 2, 3, 5, 8] {
            let (single, sharded) = both(n);
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.num_docs(), single.num_docs());
            assert_eq!(sharded.num_terms(), single.num_terms());
            assert_eq!(sharded.total_tokens(), single.total_tokens());
            assert_eq!(sharded.total_postings(), single.total_postings());
            assert!((sharded.avg_doc_len() - single.avg_doc_len()).abs() < 1e-12);
            for d in 0..single.num_docs() as u32 {
                assert_eq!(sharded.doc_len(d), single.doc_len(d));
            }
            for t in 0..6u32 {
                assert_eq!(sharded.doc_freq(t), single.doc_freq(t), "df term {t}");
                assert_eq!(sharded.max_tf(t), single.max_tf(t), "max_tf term {t}");
                assert!(
                    (sharded.idf(t) - single.idf(t)).abs() < 1e-12,
                    "idf term {t}"
                );
                assert_eq!(
                    sharded.postings(t).to_vec(),
                    single.postings(t).to_vec(),
                    "postings term {t}"
                );
            }
        }
    }

    #[test]
    fn terms_live_on_exactly_one_shard() {
        let (_, sharded) = both(4);
        for t in 0..6u32 {
            let populated: Vec<usize> = (0..sharded.num_shards())
                .filter(|&s| !sharded.shard(s).postings(t).is_empty())
                .collect();
            if sharded.doc_freq(t) == 0 {
                assert!(populated.is_empty(), "unused term {t} nowhere");
            } else {
                assert_eq!(populated, vec![sharded.router().shard_of(t)], "term {t}");
            }
        }
    }

    #[test]
    fn shards_carry_global_doc_stats() {
        let (single, sharded) = both(3);
        for s in 0..3 {
            let shard = sharded.shard(s);
            assert_eq!(shard.num_docs(), single.num_docs());
            assert_eq!(shard.total_tokens(), single.total_tokens());
            assert!((shard.avg_doc_len() - single.avg_doc_len()).abs() < 1e-12);
        }
    }

    #[test]
    fn from_single_equals_direct_build() {
        let docs = docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let a = ShardedIndex::build(&refs, 6, 4);
        let b = ShardedIndex::from_single(InvertedIndex::build(&refs, 6), 4);
        for t in 0..6u32 {
            assert_eq!(a.postings(t).to_vec(), b.postings(t).to_vec());
        }
    }
}
