//! Property tests for the pacing scheduler: for every strategy and cycle
//! shape, the schedule is time-sorted, complete, content-preserving,
//! latency-capped, and deterministic under a fixed seed.

use proptest::prelude::*;
use toppriv_core::{
    CycleQuery, CycleResult, PacingConfig, PacingScheduler, PacingStrategy, PrivacyMetrics,
};

fn fake_cycle(n: usize, genuine_index: usize) -> CycleResult {
    let cycle: Vec<CycleQuery> = (0..n)
        .map(|i| CycleQuery {
            tokens: vec![i as u32, (i * 7 + 1) as u32],
            is_genuine: i == genuine_index,
            masking_topic: (i != genuine_index).then_some(i),
        })
        .collect();
    CycleResult {
        cycle,
        genuine_index,
        intention: vec![0],
        solo_boosts: vec![0.2],
        cycle_boosts: vec![0.005],
        masking_topics: vec![],
        ineffective_topics: vec![],
        satisfied: true,
        metrics: PrivacyMetrics::default(),
    }
}

fn strategy_strategy() -> impl Strategy<Value = PacingStrategy> {
    prop_oneof![
        Just(PacingStrategy::NaiveImmediate),
        Just(PacingStrategy::ShuffledBurst),
        (1.0f64..120.0, 0.0f64..20.0).prop_map(|(window_secs, max_genuine_delay_secs)| {
            PacingStrategy::PoissonSpread {
                window_secs,
                max_genuine_delay_secs,
            }
        }),
    ]
}

proptest! {
    #[test]
    fn schedule_is_sound(
        strategy in strategy_strategy(),
        n in 1usize..12,
        genuine_offset in 0usize..12,
        seed: u64,
        start in 0.0f64..1e6,
    ) {
        let genuine_index = genuine_offset % n;
        let cycle = fake_cycle(n, genuine_index);
        let mut scheduler = PacingScheduler::new(PacingConfig {
            strategy,
            seed,
            ..Default::default()
        });
        let sched = scheduler.schedule(&cycle, start);

        // Complete: one submission per cycle query, exactly one genuine.
        prop_assert_eq!(sched.len(), n);
        prop_assert_eq!(sched.iter().filter(|q| q.is_genuine).count(), 1);

        // Sorted and never before the cycle start.
        prop_assert!(sched.windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        prop_assert!(sched.iter().all(|q| q.time_secs >= start - 1e-9));

        // Content-preserving: the submitted token multiset is the cycle's.
        let mut sent: Vec<Vec<u32>> = sched.iter().map(|q| q.tokens.clone()).collect();
        let mut expected: Vec<Vec<u32>> =
            cycle.cycle.iter().map(|q| q.tokens.clone()).collect();
        sent.sort();
        expected.sort();
        prop_assert_eq!(sent, expected);

        // Latency cap for the spread strategy.
        if let PacingStrategy::PoissonSpread { max_genuine_delay_secs, .. } = strategy {
            let delay = PacingScheduler::genuine_delay(&sched, start);
            prop_assert!(
                delay <= max_genuine_delay_secs + 1e-9,
                "delay {} over cap {}", delay, max_genuine_delay_secs
            );
        }
    }

    #[test]
    fn schedule_is_deterministic(
        strategy in strategy_strategy(),
        n in 1usize..10,
        seed: u64,
    ) {
        let cycle = fake_cycle(n, 0);
        let times = |s: u64| -> Vec<f64> {
            let mut sch = PacingScheduler::new(PacingConfig {
                strategy,
                seed: s,
                ..Default::default()
            });
            sch.schedule(&cycle, 42.0).iter().map(|q| q.time_secs).collect()
        };
        prop_assert_eq!(times(seed), times(seed));
    }
}
