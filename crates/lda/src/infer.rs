//! Fold-in inference: estimating `Pr(t|q)` for text not seen in training.
//!
//! This is the "inference mode" of GibbsLDA++ the paper relies on: the
//! word-topic statistics (`phi`) are frozen, and Gibbs sweeps resample only
//! the query's own topic assignments. The posterior is read off the local
//! counts, averaged over the post-burn-in sweeps for stability.

use crate::model::LdaModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use tsearch_text::TermId;

/// Inference parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Total Gibbs sweeps over the query tokens.
    pub sweeps: usize,
    /// Sweeps discarded before averaging.
    pub burn_in: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            sweeps: 30,
            burn_in: 10,
        }
    }
}

/// Query-time inference engine bound to a trained model.
#[derive(Debug, Clone)]
pub struct Inferencer<'m> {
    model: &'m LdaModel,
    config: InferenceConfig,
}

impl<'m> Inferencer<'m> {
    /// Creates an inferencer with default parameters.
    pub fn new(model: &'m LdaModel) -> Self {
        Self {
            model,
            config: InferenceConfig::default(),
        }
    }

    /// Creates an inferencer with explicit parameters.
    pub fn with_config(model: &'m LdaModel, config: InferenceConfig) -> Self {
        assert!(config.sweeps > config.burn_in, "need post-burn-in sweeps");
        Self { model, config }
    }

    /// The bound model.
    pub fn model(&self) -> &LdaModel {
        self.model
    }

    /// Infers `Pr(t|tokens)`. Deterministic: the RNG is seeded from the
    /// token content, so the same query text always yields the same
    /// posterior (matching how a client would cache per-query inferences).
    pub fn infer(&self, tokens: &[TermId]) -> Vec<f64> {
        let mut hasher = DefaultHasher::new();
        tokens.hash(&mut hasher);
        self.infer_with_seed(tokens, hasher.finish())
    }

    /// Infers `Pr(t|tokens)` with an explicit seed.
    pub fn infer_with_seed(&self, tokens: &[TermId], seed: u64) -> Vec<f64> {
        let k = self.model.num_topics();
        let alpha = self.model.alpha();
        let kalpha = k as f64 * alpha;
        if tokens.is_empty() {
            // An empty query carries no evidence: posterior equals the
            // symmetric Dirichlet mean.
            return vec![1.0 / k as f64; k];
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // Local assignments and counts.
        let mut assignments: Vec<usize> = Vec::with_capacity(tokens.len());
        let mut ndk = vec![0u32; k];
        for _ in tokens {
            let z = rng.gen_range(0..k);
            assignments.push(z);
            ndk[z] += 1;
        }
        let mut weights = vec![0.0f64; k];
        let mut accumulated = vec![0.0f64; k];
        let mut kept = 0usize;
        for sweep in 0..self.config.sweeps {
            for (i, &w) in tokens.iter().enumerate() {
                let old = assignments[i];
                ndk[old] -= 1;
                let phi_row = self.model.word_topics(w);
                let mut total = 0.0;
                for t in 0..k {
                    let p = phi_row[t] * (ndk[t] as f64 + alpha);
                    total += p;
                    weights[t] = total;
                }
                let new = if total > 0.0 {
                    let u = rng.gen::<f64>() * total;
                    weights.iter().position(|&cum| u < cum).unwrap_or(k - 1)
                } else {
                    rng.gen_range(0..k)
                };
                assignments[i] = new;
                ndk[new] += 1;
            }
            if sweep >= self.config.burn_in {
                kept += 1;
                let denom = tokens.len() as f64 + kalpha;
                for t in 0..k {
                    accumulated[t] += (ndk[t] as f64 + alpha) / denom;
                }
            }
        }
        let kept = kept.max(1) as f64;
        accumulated.iter_mut().for_each(|p| *p /= kept);
        accumulated
    }

    /// Posterior of a *cycle* of queries per Equation (2):
    /// `Pr(t|{q1..qv}) = (1/v) Σ Pr(t|q)`, assuming all queries in the
    /// cycle look equally likely to the adversary.
    pub fn infer_cycle(&self, queries: &[&[TermId]]) -> Vec<f64> {
        let k = self.model.num_topics();
        if queries.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut mean = vec![0.0f64; k];
        for q in queries {
            let post = self.infer(q);
            for t in 0..k {
                mean[t] += post[t];
            }
        }
        mean.iter_mut().for_each(|p| *p /= queries.len() as f64);
        mean
    }

    /// Combines precomputed per-query posteriors per Equation (2). The
    /// client caches each query's posterior and calls this to evaluate a
    /// growing cycle without re-inferring earlier members.
    pub fn combine_posteriors(posteriors: &[Vec<f64>]) -> Vec<f64> {
        assert!(!posteriors.is_empty(), "cycle must be non-empty");
        let k = posteriors[0].len();
        let mut mean = vec![0.0f64; k];
        for p in posteriors {
            assert_eq!(p.len(), k, "posterior dimension mismatch");
            for t in 0..k {
                mean[t] += p[t];
            }
        }
        mean.iter_mut().for_each(|m| *m /= posteriors.len() as f64);
        mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{LdaConfig, LdaTrainer};

    /// Train a tiny model on two separated word blocks.
    fn trained_model() -> LdaModel {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            docs.push((0..30).map(|i| base + (i % 5) as u32).collect::<Vec<_>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        LdaTrainer::train(
            &refs,
            10,
            LdaConfig {
                iterations: 60,
                alpha: Some(0.5),
                ..LdaConfig::with_topics(2)
            },
        )
    }

    #[test]
    fn posterior_is_a_distribution() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        let post = inf.infer(&[0, 1, 2]);
        assert_eq!(post.len(), 2);
        let sum: f64 = post.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sums to {sum}");
        assert!(post.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn posterior_favors_the_right_topic() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        // Which trained topic owns the low block?
        let low_topic = if model.phi(0, 0) > model.phi(1, 0) {
            0
        } else {
            1
        };
        let post_low = inf.infer(&[0, 1, 2, 3]);
        let post_high = inf.infer(&[5, 6, 7, 8]);
        assert!(
            post_low[low_topic] > 0.7,
            "low-block query should load topic {low_topic}: {post_low:?}"
        );
        assert!(
            post_high[1 - low_topic] > 0.7,
            "high-block query should load the other topic: {post_high:?}"
        );
    }

    #[test]
    fn inference_is_deterministic() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        assert_eq!(inf.infer(&[0, 5, 1]), inf.infer(&[0, 5, 1]));
    }

    #[test]
    fn empty_query_is_uniform() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        let post = inf.infer(&[]);
        assert_eq!(post, vec![0.5, 0.5]);
    }

    #[test]
    fn cycle_posterior_is_mean() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        let q1: Vec<TermId> = vec![0, 1, 2];
        let q2: Vec<TermId> = vec![5, 6, 7];
        let p1 = inf.infer(&q1);
        let p2 = inf.infer(&q2);
        let cycle = inf.infer_cycle(&[&q1, &q2]);
        for t in 0..2 {
            assert!((cycle[t] - (p1[t] + p2[t]) / 2.0).abs() < 1e-12);
        }
        let combined = Inferencer::combine_posteriors(&[p1.clone(), p2.clone()]);
        assert_eq!(cycle, combined);
    }

    #[test]
    fn mixed_query_splits_mass() {
        let model = trained_model();
        let inf = Inferencer::new(&model);
        let post = inf.infer(&[0, 1, 5, 6]);
        // Both topics should get substantial mass.
        assert!(post[0] > 0.2 && post[1] > 0.2, "{post:?}");
    }

    #[test]
    #[should_panic(expected = "post-burn-in")]
    fn bad_config_rejected() {
        let model = trained_model();
        let _ = Inferencer::with_config(
            &model,
            InferenceConfig {
                sweeps: 5,
                burn_in: 5,
            },
        );
    }
}
