//! Experiment `pacing` (extension beyond the paper): the timing side
//! channel of cycle submission.
//!
//! A simulated user issues protected queries with exponential think-time;
//! the client schedules each cycle with one of three pacing strategies
//! (`toppriv-core::pacing`); the adversary sees only the engine's timed
//! log and mounts the timing attack of `toppriv-adversary::timing`,
//! sweeping its segmentation threshold and picking its best heuristic.
//!
//! Expected shape: the naive client (genuine query first) is fully
//! identified; the paper's shuffled burst reduces identification to
//! chance ≈ 1/υ but still segments perfectly; Poisson spreading destroys
//! segmentation too, at the price of genuine-result latency.

use crate::context::ExperimentContext;
use crate::table::{f3, ResultTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use toppriv_adversary::{run_timing_attack, TimingHeuristic};
use toppriv_core::{
    merge_schedules, BeliefEngine, GhostConfig, GhostGenerator, PacingConfig, PacingScheduler,
    PacingStrategy, PrivacyRequirement, ScheduledQuery,
};

/// Mean user think-time between protected queries (seconds, simulated).
pub const THINK_SECS: f64 = 90.0;
/// Segmentation thresholds the adversary sweeps (seconds).
pub const GAP_THRESHOLDS: &[f64] = &[0.2, 1.0, 5.0, 30.0];

/// The pacing strategies compared.
fn strategies() -> Vec<(&'static str, PacingStrategy)> {
    vec![
        ("naive_immediate", PacingStrategy::NaiveImmediate),
        ("shuffled_burst", PacingStrategy::ShuffledBurst),
        (
            "poisson_spread",
            PacingStrategy::PoissonSpread {
                window_secs: 60.0,
                max_genuine_delay_secs: 5.0,
            },
        ),
    ]
}

/// Runs the timing experiment on the default model.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let model = ctx.default_model();
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        PrivacyRequirement::paper_default(),
        GhostConfig::default(),
    );
    let queries = &ctx.queries[..ctx.scale.adversary_queries.min(ctx.queries.len())];

    // Protect every query once; the schedules differ per strategy but the
    // cycles are shared (the content channel is held fixed).
    let cycles: Vec<_> = queries
        .iter()
        .map(|q| generator.generate(&q.tokens))
        .collect();

    // Simulated arrival clock (same draw for every strategy).
    let mut rng = StdRng::seed_from_u64(0xc10c_4a77);
    let mut arrivals = Vec::with_capacity(cycles.len());
    let mut t = 0.0f64;
    for _ in &cycles {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -THINK_SECS * u.ln();
        arrivals.push(t);
    }

    let mut table = ResultTable::new(
        "ext3_pacing_timing_attack",
        "Timing side channel: best-case timing adversary vs pacing strategy \
         (default model, eps=(5%,1%), exponential think-time)",
        vec![
            "strategy".into(),
            "heuristic".into(),
            "ident_rate".into(),
            "chance_rate".into(),
            "advantage".into(),
            "pair_precision".into(),
            "pair_recall".into(),
            "best_gap_secs".into(),
            "mean_genuine_delay_secs".into(),
        ],
    );

    for (name, strategy) in strategies() {
        let mut scheduler = PacingScheduler::new(PacingConfig {
            strategy,
            ..Default::default()
        });
        let mut log: Vec<ScheduledQuery> = Vec::new();
        let mut delay_sum = 0.0;
        for (cycle, &start) in cycles.iter().zip(&arrivals) {
            let sched = scheduler.schedule(cycle, start);
            delay_sum += PacingScheduler::genuine_delay(&sched, start);
            log.extend(sched);
        }
        let log = merge_schedules(log);
        let mean_delay = delay_sum / cycles.len().max(1) as f64;

        for heuristic in [
            TimingHeuristic::First,
            TimingHeuristic::Last,
            TimingHeuristic::MaxGapBefore,
        ] {
            // Best-case adversary: the threshold that maximizes advantage.
            let best = GAP_THRESHOLDS
                .iter()
                .map(|&g| (g, run_timing_attack(&log, g, heuristic)))
                .max_by(|a, b| {
                    a.1.advantage()
                        .partial_cmp(&b.1.advantage())
                        .expect("finite advantage")
                })
                .expect("non-empty threshold grid");
            let (gap, report) = best;
            table.push_row(vec![
                name.into(),
                format!("{heuristic:?}"),
                f3(report.identification_rate),
                f3(report.chance_rate),
                f3(report.advantage()),
                f3(report.pair_precision),
                f3(report.pair_recall),
                f3(gap),
                f3(mean_delay),
            ]);
        }
    }
    vec![table]
}
