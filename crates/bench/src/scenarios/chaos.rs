//! Scenario `chaos`: the fleet under deterministic fault injection.
//!
//! Three probes, one snapshot:
//!
//! - **Throughput under faults**: the identical workload (same fleet
//!   seed, fresh manager per phase) is drained fault-free, then with 1%
//!   and 5% injected worker panics plus short shard stalls, through
//!   [`toppriv_service::CycleScheduler::drain_resilient`]. The snapshot
//!   records qps and a p50/p99 submit-latency stage row per phase, and
//!   asserts every *delivered* cycle — replans included — has genuine
//!   rankings bit-identical to the fault-free run.
//! - **Cycle atomicity**: a predicate fault dooms every submission one
//!   tenant owns, on every attempt. Its cycle (and the one replanned
//!   incarnation) must roll back so cleanly that the tenant's trace
//!   accounting is `to_bits`-identical to the never-formulated
//!   snapshot, while the other tenants' cycles still deliver.
//! - **Quarantine + degraded drain**: a one-shot 1 s stall on shard 0
//!   outlives a 200 ms drain deadline. The watchdog bounds the degraded
//!   drain (instead of hanging the full stall), the shard is
//!   quarantined and sits out the next drain, and the re-admission
//!   probe restores full service — the time from first failure to the
//!   probe succeeding is the recovery time the snapshot reports.

use super::{finish_with, sharded_tier, ScenarioReport, FLEET_SEED, SHARDS, TOP_K, WORKERS};
use crate::context::ExperimentContext;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};
use toppriv_obs::{InvariantBlock, StageStats};
use toppriv_service::metrics::M_SUBMIT_US;
use toppriv_service::{
    AuditConfig, CycleScheduler, DrainPolicy, FaultKind, FaultPlane, FaultSpec, PlannedQuery,
    SessionManager, SessionMetrics, SubmitOutcome,
};

/// Tenants per phase.
const SESSIONS: usize = 8;

/// Cycles each tenant plans per phase.
const CYCLES_PER_SESSION: usize = 3;

/// Fault-plane seed: the whole schedule is a pure function of this.
const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// Injected panic rates for the throughput phases (fault-free first).
const RATES: [f64; 3] = [0.0, 0.01, 0.05];

/// Watchdog deadline for the degraded-drain probe.
const DEADLINE_MS: u64 = 200;

/// Injected stall for the quarantine probe — must dwarf the deadline so
/// a bounded drain proves the watchdog, not a lucky short stall.
const STALL_MS: u64 = 1000;

/// A fleet manager on a fresh sharded tier with an optional fault
/// plane (the plane must attach after the auditor so injected faults
/// are journaled).
fn chaos_manager(ctx: &ExperimentContext, plane: Option<Arc<FaultPlane>>) -> Arc<SessionManager> {
    let mut manager =
        SessionManager::with_tier(sharded_tier(ctx, SHARDS), ctx.default_model().clone())
            .with_cache(4096)
            .with_fleet_seed(FLEET_SEED)
            .with_auditor(AuditConfig::default());
    if let Some(plane) = plane {
        manager = manager.with_fault_plane(plane);
    }
    Arc::new(manager)
}

/// Genuine hits per (session, cycle id), scores compared bitwise.
fn genuine_hits(outcomes: &[SubmitOutcome]) -> HashMap<(String, usize), Vec<(u32, u64)>> {
    let mut map = HashMap::new();
    for o in outcomes.iter().filter(|o| o.is_genuine) {
        map.insert(
            (o.session.clone(), o.cycle_id),
            o.hits
                .iter()
                .map(|h| (h.doc_id, h.score.to_bits()))
                .collect(),
        );
    }
    map
}

/// Bitwise equality of two session accounting snapshots.
fn bit_identical(a: &SessionMetrics, b: &SessionMetrics) -> bool {
    a.cycles == b.cycles
        && a.queries_emitted == b.queries_emitted
        && a.mean_cycle_len.to_bits() == b.mean_cycle_len.to_bits()
        && a.mean_exposure.to_bits() == b.mean_exposure.to_bits()
        && a.worst_exposure.to_bits() == b.worst_exposure.to_bits()
        && a.mean_mask_level.to_bits() == b.mean_mask_level.to_bits()
        && a.satisfied_rate.to_bits() == b.satisfied_rate.to_bits()
        && a.trace_exposure.to_bits() == b.trace_exposure.to_bits()
}

/// One throughput phase: the canonical workload on a fresh fleet.
struct Phase {
    manager: Arc<SessionManager>,
    plane: Option<Arc<FaultPlane>>,
    /// (session, original cycle id) of every planned cycle.
    planned: Vec<(String, usize)>,
    delivered: HashMap<(String, usize), Vec<(u32, u64)>>,
    delivered_keys: HashSet<(String, usize)>,
    rolled: HashSet<(String, usize)>,
    /// Replanned-cycle translation: (session, new id) → original id.
    new_to_old: HashMap<(String, usize), usize>,
    rounds: usize,
    qps: f64,
    worst_violation: f64,
    satisfied: usize,
    cycles: usize,
}

fn run_phase(ctx: &ExperimentContext, panic_rate: f64) -> Phase {
    let plane = (panic_rate > 0.0).then(|| {
        Arc::new(
            FaultPlane::new(CHAOS_SEED)
                .with_spec(FaultSpec::rate(FaultKind::WorkerPanic, panic_rate))
                .with_spec(FaultSpec::rate(FaultKind::ShardStall, panic_rate).stalling_ms(2)),
        )
    });
    let manager = chaos_manager(ctx, plane.clone());
    super::open_tenants(&manager, SESSIONS);
    let queries = ctx.sweep_queries();
    let eps2 = toppriv_core::PrivacyRequirement::paper_default().eps2;
    let mut worst_violation = f64::NEG_INFINITY;
    let mut satisfied = 0usize;
    let mut cycles = 0usize;
    let mut planned = Vec::new();
    let mut plans: Vec<Vec<PlannedQuery>> = Vec::new();
    for r in 0..CYCLES_PER_SESSION {
        for (s, id) in manager.session_ids().iter().enumerate() {
            let q = &queries[(r * 7 + s * 3) % queries.len()];
            let (report, plan) = manager
                .plan_cycle_with_report(id, &q.tokens, TOP_K)
                .expect("session is open");
            worst_violation = worst_violation.max(super::masking_violation(&report.metrics, eps2));
            if report.satisfied && !report.intention.is_empty() {
                satisfied += 1;
            }
            cycles += 1;
            planned.push((id.clone(), plan[0].scheduled.cycle_id));
            plans.push(plan);
        }
    }
    let scheduler = CycleScheduler::for_manager(&manager, WORKERS);
    let t0 = Instant::now();
    let report = scheduler.drain_resilient(&manager, CycleScheduler::merge(plans));
    let secs = t0.elapsed().as_secs_f64();
    Phase {
        delivered: genuine_hits(&report.outcomes),
        delivered_keys: report
            .outcomes
            .iter()
            .map(|o| (o.session.clone(), o.cycle_id))
            .collect(),
        rolled: report
            .rolled_back
            .iter()
            .map(|r| (r.session.clone(), r.cycle_id))
            .collect(),
        new_to_old: report
            .replanned
            .iter()
            .map(|(s, old, new)| ((s.clone(), *new), *old))
            .collect(),
        rounds: report.rounds,
        qps: report.outcomes.len() as f64 / secs.max(1e-9),
        manager,
        plane,
        planned,
        worst_violation,
        satisfied,
        cycles,
    }
}

/// Silences the panic-hook noise from *injected* faults (the scheduler
/// catches them; the default hook would still print a backtrace per
/// fire). Real panics keep the previous hook's full output.
fn quiet_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected "));
        if !injected {
            previous(info);
        }
    }));
}

/// Runs the chaos scenario.
pub fn run(ctx: &ExperimentContext) -> ScenarioReport {
    quiet_injected_panics();
    let mut inv = InvariantBlock::default();

    // ── Throughput phases: the same fleet at 0% / 1% / 5% faults. ──
    let phases: Vec<Phase> = RATES.iter().map(|&r| run_phase(ctx, r)).collect();
    let baseline = &phases[0].delivered;
    let mut mismatched = 0usize;
    let mut lost: Vec<(String, usize)> = Vec::new();
    let mut fired_total = 0u64;
    for phase in &phases[1..] {
        if let Some(plane) = &phase.plane {
            fired_total += plane.fired(FaultKind::WorkerPanic) + plane.fired(FaultKind::ShardStall);
        }
        for (key, hits) in &phase.delivered {
            let orig = phase.new_to_old.get(key).copied().unwrap_or(key.1);
            match baseline.get(&(key.0.clone(), orig)) {
                Some(expect) if expect == hits => {}
                _ => mismatched += 1,
            }
        }
        for key in &phase.planned {
            if !phase.delivered_keys.contains(key) && !phase.rolled.contains(key) {
                lost.push(key.clone());
            }
        }
    }
    inv.check(
        "fault_free_baseline_clean",
        format!(
            "phase 0: {} cycles delivered in {} round(s), none rolled back",
            phases[0].delivered.len(),
            phases[0].rounds
        ),
        phases[0].rounds == 1 && phases[0].rolled.is_empty() && !baseline.is_empty(),
    );
    inv.check(
        "faults_actually_injected",
        format!(
            "{fired_total} faults fired across the 1%/5% phases \
             ({} and {} drain rounds)",
            phases[1].rounds, phases[2].rounds
        ),
        fired_total > 0,
    );
    inv.check(
        "survivors_bit_identical",
        format!(
            "every delivered genuine ranking matches the fault-free run bitwise \
             ({} + {} delivered cycles, {mismatched} mismatched)",
            phases[1].delivered.len(),
            phases[2].delivered.len()
        ),
        mismatched == 0 && !phases[2].delivered.is_empty(),
    );
    inv.check(
        "no_cycle_silently_lost",
        format!(
            "every planned cycle delivered or rolled back under faults \
             ({} planned per phase, {} unaccounted)",
            phases[1].planned.len(),
            lost.len()
        ),
        lost.is_empty(),
    );
    let masked = phases
        .iter()
        .all(|p| p.worst_violation <= 1e-9 && p.satisfied > 0);
    inv.check(
        "intention_masked_or_negligible",
        format!(
            "{} cycles per phase; worst min(exposure − mask_level, exposure − ε2) = {:.3e}",
            phases[0].cycles,
            phases
                .iter()
                .map(|p| p.worst_violation)
                .fold(f64::NEG_INFINITY, f64::max)
        ),
        masked,
    );

    // ── Cycle atomicity: a doomed tenant rolls back bit-exactly. ──
    let doomed = chaos_manager(
        ctx,
        Some(Arc::new(FaultPlane::new(CHAOS_SEED).with_spec(
            FaultSpec::predicate(
                FaultKind::WorkerPanic,
                Arc::new(|p: &PlannedQuery| p.session == "tenant-0"),
            ),
        ))),
    );
    super::open_tenants(&doomed, 4);
    let queries = ctx.sweep_queries();
    let pristine = doomed.session_metrics("tenant-0").expect("tenant open");
    let mut plans = Vec::new();
    for (s, id) in doomed.session_ids().iter().enumerate() {
        plans.push(
            doomed
                .plan_cycle(id, &queries[s % queries.len()].tokens, TOP_K)
                .expect("session is open"),
        );
    }
    let report = CycleScheduler::for_manager(&doomed, WORKERS)
        .drain_resilient(&doomed, CycleScheduler::merge(plans));
    let after = doomed.session_metrics("tenant-0").expect("tenant open");
    let doomed_rollbacks = report
        .rolled_back
        .iter()
        .filter(|r| r.session == "tenant-0")
        .count();
    let survivors: HashSet<&str> = report.outcomes.iter().map(|o| o.session.as_str()).collect();
    inv.check(
        "zero_half_debited_cycles",
        format!(
            "doomed tenant rolled back {doomed_rollbacks} incarnation(s); trace accounting \
             bit-identical to the never-formulated snapshot; {} healthy tenants delivered",
            survivors.len()
        ),
        bit_identical(&pristine, &after)
            && doomed_rollbacks >= 1
            && !survivors.contains("tenant-0")
            && survivors.len() == 3,
    );

    // ── Quarantine: stall > deadline, sit out one drain, recover. ──
    let stall_plane = Arc::new(
        FaultPlane::new(CHAOS_SEED).with_spec(
            FaultSpec::rate(FaultKind::ShardStall, 1.0)
                .on_shard(0)
                .stalling_ms(STALL_MS)
                .limit(1),
        ),
    );
    let quarantined = chaos_manager(ctx, Some(stall_plane));
    super::open_tenants(&quarantined, 6);
    let mut plans = Vec::new();
    for (s, id) in quarantined.session_ids().iter().enumerate() {
        plans.push(
            quarantined
                .plan_cycle(id, &queries[(s + 5) % queries.len()].tokens, TOP_K)
                .expect("session is open"),
        );
    }
    let scheduler = CycleScheduler::for_manager(&quarantined, WORKERS).with_policy(DrainPolicy {
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        deadline: Duration::from_millis(DEADLINE_MS),
        quarantine_threshold: 1,
        quarantine_drains: 2,
    });
    let t0 = Instant::now();
    let err = scheduler
        .try_drain(CycleScheduler::merge(plans))
        .expect_err("the injected stall must outlive the deadline");
    let degraded_ms = t0.elapsed().as_millis() as u64;
    let t_recover = Instant::now();
    // Roll the terminally failed cycles back; everything else re-queues.
    let victims: HashSet<(String, usize)> = err
        .failures
        .iter()
        .map(|f| (f.session.clone(), f.cycle_id))
        .collect();
    for (session, cycle_id) in &victims {
        quarantined
            .rollback_cycle(session, *cycle_id)
            .expect("failed cycle is in the rollback window");
    }
    let pending: Vec<PlannedQuery> = err
        .unresolved
        .into_iter()
        .filter(|p| !victims.contains(&(p.session.clone(), p.scheduled.cycle_id)))
        .collect();
    let stalled_on_shard0 = err.failures.iter().all(|f| f.shard == 0) && !err.failures.is_empty();
    // Second drain, while shard 0 sits in quarantine: a fresh round of
    // cycles (plus whatever the degraded drain left unresolved) drains
    // everywhere else, and every shard-0 entry is skipped back into
    // `unresolved` — the degraded, still-serving fleet.
    let mut round2 = vec![pending];
    for (s, id) in quarantined.session_ids().iter().enumerate() {
        round2.push(
            quarantined
                .plan_cycle(id, &queries[(s + 11) % queries.len()].tokens, TOP_K)
                .expect("session is open"),
        );
    }
    let skipped = match scheduler.try_drain(CycleScheduler::merge(round2)) {
        Ok(_) => Vec::new(),
        Err(e) => e.unresolved,
    };
    let in_quarantine = scheduler
        .quarantined_shards()
        .iter()
        .any(|&(shard, _)| shard == 0);
    // Third drain is the re-admission probe: the stall budget is spent,
    // so shard 0 serves again.
    let probe = scheduler.try_drain(skipped.clone());
    let recovery_ms = t_recover.elapsed().as_millis() as u64;
    inv.check(
        "degraded_drain_bounded",
        format!(
            "injected {STALL_MS} ms stall, {DEADLINE_MS} ms deadline: degraded drain \
             finished in {degraded_ms} ms"
        ),
        degraded_ms < 2 * DEADLINE_MS,
    );
    let probed_ok = matches!(&probe, Ok(outcomes) if !outcomes.is_empty());
    inv.check(
        "quarantine_then_recovery",
        format!(
            "{} terminal failure(s) on shard 0 → quarantined (observed: {in_quarantine}), \
             {} entries skipped one drain, probe redelivered {} in {recovery_ms} ms",
            err.failures.len(),
            skipped.len(),
            probe.as_ref().map(|o| o.len()).unwrap_or(0)
        ),
        stalled_on_shard0 && in_quarantine && !skipped.is_empty() && probed_ok,
    );
    let codes: HashSet<String> = quarantined
        .auditor()
        .map(|a| a.tail(128).iter().map(|e| e.code.clone()).collect())
        .unwrap_or_default();
    let doomed_codes: HashSet<String> = doomed
        .auditor()
        .map(|a| a.tail(128).iter().map(|e| e.code.clone()).collect())
        .unwrap_or_default();
    inv.check(
        "fault_events_journaled",
        format!(
            "quarantine fleet journaled {codes:?}; doomed fleet journaled \
             cycle_rolled_back: {}",
            doomed_codes.contains("cycle_rolled_back")
        ),
        codes.contains("shard_quarantined")
            && codes.contains("degraded_drain")
            && doomed_codes.contains("cycle_rolled_back"),
    );

    // Snapshot: per-phase submit-latency stage rows + the faulty-fleet
    // registry (the 5% phase manager carries the auto audit verdict).
    let mut extra_stages = Vec::new();
    for (phase, label) in phases.iter().zip(["fault_free", "1pct", "5pct"]) {
        let h = phase
            .manager
            .metrics_registry()
            .registry()
            .histogram(M_SUBMIT_US, &[]);
        if h.count() > 0 {
            extra_stages.push(StageStats::from_histogram(format!("submit_{label}"), &h));
        }
    }
    let notes = format!(
        "{SESSIONS} tenants x {CYCLES_PER_SESSION} cycles per phase, {SHARDS} shards, \
         {WORKERS} workers; qps fault-free/1%/5% = {:.0}/{:.0}/{:.0} \
         ({}/{}/{} rounds, {fired_total} faults fired); quarantine recovery {recovery_ms} ms \
         after a {degraded_ms} ms degraded drain ({STALL_MS} ms stall, {DEADLINE_MS} ms deadline)",
        phases[0].qps,
        phases[1].qps,
        phases[2].qps,
        phases[0].rounds,
        phases[1].rounds,
        phases[2].rounds,
    );
    let qps = phases[2].qps;
    let report = finish_with("chaos", &phases[2].manager, qps, notes, inv, extra_stages);
    for phase in &phases {
        phase.manager.tier().clear_query_logs();
    }
    quarantined.tier().clear_query_logs();
    doomed.tier().clear_query_logs();
    report
}
