//! Property tests for the audit-journal spill codec: arbitrary journals
//! must round-trip exactly, and no corrupted byte of a sealed container
//! may decode silently.

use proptest::prelude::*;
use toppriv_obs::{AuditEvent, AuditSeverity};
use toppriv_service::persist::{decode_audit_journal, encode_audit_journal};
use toppriv_service::{seal_audit_journal, unseal_audit_journal};

fn severity() -> impl Strategy<Value = AuditSeverity> {
    prop_oneof![
        Just(AuditSeverity::Info),
        Just(AuditSeverity::Warning),
        Just(AuditSeverity::Breach),
    ]
}

/// Arbitrary journal events: codes span the real taxonomy, tenants and
/// details are derived strings including multi-byte unicode and the
/// empty string (system events carry no tenant).
fn event() -> impl Strategy<Value = AuditEvent> {
    (
        any::<u64>(),
        severity(),
        prop_oneof![
            Just("eps2_breach"),
            Just("low_headroom"),
            Just("journal_spill"),
            Just("spill_failed"),
        ],
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(seq, severity, code, tenant_nonce, cycle, detail_nonce)| AuditEvent {
                seq,
                severity,
                code: code.to_string(),
                tenant: if tenant_nonce % 4 == 0 {
                    String::new()
                } else {
                    format!("tenant-{tenant_nonce:x}")
                },
                cycle,
                detail: format!("ε2 headroom {detail_nonce:x} — condition"),
            },
        )
}

fn journal(max: usize) -> impl Strategy<Value = Vec<AuditEvent>> {
    collection::vec(event(), 0..max)
}

proptest! {
    #[test]
    fn journal_roundtrips_exactly(events in journal(24)) {
        let back = decode_audit_journal(&encode_audit_journal(&events))
            .expect("every encoded journal decodes");
        prop_assert_eq!(&back, &events);
        let sealed = seal_audit_journal(&events);
        prop_assert_eq!(&unseal_audit_journal(&sealed).expect("sealed round-trip"), &events);
    }

    #[test]
    fn any_corrupted_byte_is_rejected(events in journal(12), pos: u64, flip in 1u8..=255) {
        let mut sealed = seal_audit_journal(&events);
        let at = pos as usize % sealed.len();
        sealed[at] ^= flip;
        // The container CRC32 detects every error confined to one byte,
        // so a flip anywhere — header, payload, or checksum — must
        // surface as an error, never as a silently different journal.
        prop_assert!(unseal_audit_journal(&sealed).is_err());
    }

    #[test]
    fn truncated_payload_is_rejected(events in journal_nonempty(), cut: u64) {
        let payload = encode_audit_journal(&events);
        // A strict prefix can never satisfy the event count declared in
        // the header (every event occupies at least one byte).
        let keep = cut as usize % payload.len();
        prop_assert!(decode_audit_journal(&payload[..keep]).is_err());
    }
}

fn journal_nonempty() -> impl Strategy<Value = Vec<AuditEvent>> {
    collection::vec(event(), 1..8)
}
