//! # tsearch-lda
//!
//! Latent Dirichlet Allocation substrate — a Rust re-implementation of the
//! collapsed Gibbs sampler of GibbsLDA++ that the paper uses for topical
//! modeling (Section IV-B and Appendix A).
//!
//! Provides:
//! - [`LdaTrainer`]: collapsed Gibbs training with the paper's defaults
//!   (`α = 50/K`, `β = 0.1`);
//! - [`LdaModel`]: the trained `Pr(w|t)` / `Pr(t|d)` tables and the corpus
//!   prior `Pr(t)` of Equation (1);
//! - [`Inferencer`]: fold-in inference of `Pr(t|q)` for unseen queries and
//!   the cycle posterior of Equation (2);
//! - topic reports (Tables II–IV) and a compact binary codec whose sizes
//!   feed Figure 6.
//!
//! ## Example
//!
//! ```
//! use tsearch_lda::{Inferencer, LdaConfig, LdaTrainer};
//!
//! // Two separated word blocks -> two recoverable topics.
//! let docs: Vec<Vec<u32>> = (0..20)
//!     .map(|d| (0..20).map(|i| if d % 2 == 0 { i % 4 } else { 4 + i % 4 }).collect())
//!     .collect();
//! let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
//! let model = LdaTrainer::train(&refs, 8, LdaConfig {
//!     iterations: 30,
//!     ..LdaConfig::with_topics(2)
//! });
//! let posterior = Inferencer::new(&model).infer(&[0, 1, 2]);
//! assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

pub mod eval;
pub mod infer;
pub mod model;
pub mod plsa;
pub mod reduce;
pub mod report;
pub mod serialize;
pub mod train;

pub use eval::{
    held_out_perplexity, model_topic_coherences, query_coherence, umass_coherence,
    CoOccurrenceIndex,
};
pub use infer::{InferenceConfig, Inferencer};
pub use model::{LdaModel, LdaSizeBreakdown};
pub use plsa::{PlsaConfig, PlsaModel};
pub use reduce::{sample_docs, ReducedModel, ReductionConfig, TermStats, VocabMap};
pub use report::{
    all_topics, best_matching_topic, mean_pairwise_topic_similarity, topic_cosine, topic_report,
    TopicReport,
};
pub use serialize::{decode, encode, load, save, CodecError};
pub use train::{LdaConfig, LdaTrainer, TrainProgress};
