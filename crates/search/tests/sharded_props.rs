//! Shard-equivalence property: for ANY corpus, query, scoring model, and
//! shard count 1–8, [`ShardedEngine`] returns the same ranked top-k as
//! the single [`SearchEngine`] over the same documents. This is the
//! contract the whole sharded search tier rests on — the service layer
//! may split a tenant fleet across shards only because sharding is
//! invisible in the results.

use proptest::prelude::*;
use tsearch_search::{Query, ScoringModel, SearchEngine, ShardedEngine};
use tsearch_text::{Analyzer, TermId, Vocabulary};

/// Strategy: a random corpus, a random query over the same vocabulary, a
/// shard count in 1..=8, and a scoring-model selector.
#[allow(clippy::type_complexity)]
fn case_strategy() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<u32>, usize, bool, usize)> {
    (2usize..40).prop_flat_map(|vocab_size| {
        (
            proptest::collection::vec(
                proptest::collection::vec(0u32..vocab_size as u32, 0..25),
                1..30,
            ),
            proptest::collection::vec(0u32..vocab_size as u32, 1..8),
            1usize..9,
            any::<bool>(),
            1usize..12,
        )
    })
}

fn build_engines(
    docs: &[Vec<u32>],
    vocab_size: usize,
    model: ScoringModel,
    shards: usize,
) -> (SearchEngine, ShardedEngine) {
    let mut vocab = Vocabulary::new();
    for i in 0..vocab_size {
        vocab.intern(&format!("w{i:03}"));
    }
    for d in docs {
        vocab.observe_document(d);
    }
    let texts: Vec<String> = docs.iter().map(|_| String::new()).collect();
    let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
    let single = SearchEngine::build(&refs, &texts, Analyzer::new(), vocab.clone(), model);
    let sharded = ShardedEngine::build(&refs, &texts, Analyzer::new(), vocab, model, shards);
    (single, sharded)
}

proptest! {
    #[test]
    fn sharded_topk_equals_single_topk(
        (docs, query_tokens, shards, bm25, k) in case_strategy()
    ) {
        let vocab_size = 1 + docs
            .iter()
            .flatten()
            .chain(query_tokens.iter())
            .copied()
            .max()
            .unwrap_or(0) as usize;
        let model = if bm25 {
            ScoringModel::bm25_default()
        } else {
            ScoringModel::TfIdfCosine
        };
        let (single, sharded) = build_engines(&docs, vocab_size, model, shards);
        let query = Query::from_tokens(&query_tokens);
        let expected = single.evaluate(&query, k);
        let actual = sharded.evaluate(&query, k);
        prop_assert_eq!(expected.len(), actual.len());
        for (e, a) in expected.iter().zip(&actual) {
            prop_assert_eq!(e.doc_id, a.doc_id);
            prop_assert!(
                (e.score - a.score).abs() < 1e-9,
                "doc {}: {} vs {}", e.doc_id, e.score, a.score
            );
        }
        // The shard logs must jointly cover exactly the query's terms.
        sharded.search_tokens(&query_tokens, k);
        let mut logged: Vec<u32> = sharded
            .shard_logs()
            .iter()
            .flatten()
            .flat_map(|e| e.tokens.iter().copied())
            .collect();
        logged.sort_unstable();
        let mut sent = query_tokens.clone();
        sent.sort_unstable();
        prop_assert_eq!(logged, sent);
    }
}
