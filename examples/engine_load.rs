//! Server-side cost of privacy: what the υ−1 ghost queries per cycle do
//! to the search engine's throughput, and what pacing does to the
//! client's latency.
//!
//! The paper notes the ghosts "are responsible for the overhead of
//! privacy protection on the search engine" (Section V-A) without
//! measuring it; this example replays a protected workload against the
//! unmodified engine from several worker threads and reports the
//! throughput tax, then shows the latency side of the trade-off when the
//! Poisson pacing scheduler (timing-channel defense) is switched on.
//!
//! Run with:
//! ```text
//! cargo run --release --example engine_load
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use toppriv::core::{PacingConfig, PacingScheduler, PacingStrategy};
use toppriv::corpus::{generate_workload, WorkloadConfig};
use toppriv::{
    BeliefEngine, CorpusConfig, GhostConfig, GhostGenerator, PrivacyRequirement, SearchEngine,
};

const WORKERS: usize = 4;
const TOP_K: usize = 10;
const ROUND_FLOOR: usize = 4000;

fn replay(engine: &Arc<SearchEngine>, stream: &[Vec<u32>]) -> f64 {
    let rounds = ROUND_FLOOR.div_ceil(stream.len().max(1));
    let total = stream.len() * rounds;
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                std::hint::black_box(engine.search_tokens(&stream[i % stream.len()], TOP_K));
            });
        }
    });
    total as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let (corpus, engine, model) = toppriv::build_demo_stack(
        CorpusConfig {
            num_docs: 1500,
            num_topics: 16,
            terms_per_topic: 80,
            ..CorpusConfig::default()
        },
        32,
        40,
    );
    let queries = generate_workload(
        &corpus,
        &WorkloadConfig {
            num_queries: 40,
            ..WorkloadConfig::default()
        },
    );
    let engine = Arc::new(engine);
    let generator = GhostGenerator::new(
        BeliefEngine::new(model.clone()),
        PrivacyRequirement::paper_default(),
        GhostConfig::default(),
    );

    println!("== throughput tax of ghost queries ({WORKERS} workers, top-{TOP_K}) ==");
    let mut baseline = None;
    for upsilon in [1usize, 2, 4, 8] {
        let stream: Vec<Vec<u32>> = if upsilon == 1 {
            queries.iter().map(|q| q.tokens.clone()).collect()
        } else {
            queries
                .iter()
                .flat_map(|q| {
                    generator
                        .generate_with_target(&q.tokens, upsilon)
                        .cycle
                        .into_iter()
                        .map(|cq| cq.tokens)
                })
                .collect()
        };
        engine.clear_query_log();
        let server_qps = replay(&engine, &stream);
        let user_qps = server_qps * queries.len() as f64 / stream.len() as f64;
        let base = *baseline.get_or_insert(user_qps);
        println!(
            "  upsilon={upsilon}: server {server_qps:9.0} q/s | user-visible {user_qps:9.0} q/s | slowdown {:.2}x",
            base / user_qps
        );
    }

    println!();
    println!("== latency cost of the timing-channel defense ==");
    for (name, strategy) in [
        ("shuffled_burst (paper)", PacingStrategy::ShuffledBurst),
        (
            "poisson_spread 60s window / 5s cap",
            PacingStrategy::PoissonSpread {
                window_secs: 60.0,
                max_genuine_delay_secs: 5.0,
            },
        ),
    ] {
        let mut scheduler = PacingScheduler::new(PacingConfig {
            strategy,
            ..Default::default()
        });
        let mut delays = Vec::new();
        for q in &queries {
            let cycle = generator.generate(&q.tokens);
            let sched = scheduler.schedule(&cycle, 0.0);
            delays.push(PacingScheduler::genuine_delay(&sched, 0.0));
        }
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = delays.iter().sum::<f64>() / delays.len() as f64;
        let p95 = delays[(delays.len() * 95) / 100];
        println!("  {name}: mean genuine delay {mean:.2}s, p95 {p95:.2}s");
    }
}
