//! Offline stand-in for `criterion`.
//!
//! Keeps the authoring surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — but measures with a plain wall-clock loop:
//! a short warm-up, then `sample_size` timed samples of an adaptively
//! sized batch, reporting mean/min per-iteration time (and derived
//! throughput) to stdout. No statistics, no HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` label.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Runs closures under measurement.
pub struct Bencher<'a> {
    config: &'a Config,
    label: String,
    throughput: Option<Throughput>,
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 20,
            target_sample_time: Duration::from_millis(40),
        }
    }
}

impl Bencher<'_> {
    /// Measures `f`, printing a one-line summary.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: run until ~target time to pick an
        // iteration count per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= self.config.target_sample_time || iters_per_sample >= 1 << 20 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.config.target_sample_time.as_nanos() / elapsed.as_nanos().max(1)).max(2)
                    as u64
            };
            iters_per_sample = iters_per_sample.saturating_mul(grow).min(1 << 20);
        }
        // Timed samples.
        let mut samples: Vec<f64> = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut line = format!(
            "bench {:<40} mean {:>12}  min {:>12}  ({} samples x {} iters)",
            self.label,
            fmt_time(mean),
            fmt_time(min),
            samples.len(),
            iters_per_sample
        );
        if let Some(tp) = self.throughput {
            let (units, suffix) = match tp {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            line.push_str(&format!("  {:.3e} {}", units / mean, suffix));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            config: &self.config,
            label: name.to_string(),
            throughput: None,
        };
        f(&mut b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            config: self.config.clone(),
            name: name.to_string(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    config: Config,
    name: String,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration throughput units for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            label: format!("{}/{}", self.name, id),
            throughput: self.throughput,
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            config: &self.config,
            label: format!("{}/{}", self.name, id),
            throughput: self.throughput,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
