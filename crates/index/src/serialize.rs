//! Compact binary serialization of the inverted index.
//!
//! The engine's index is rebuilt from the corpus today, but a real
//! enterprise deployment persists it — and Figure 6 compares exactly
//! this artifact's on-disk footprint against the client's LDA model. The
//! codec stores the already-compressed postings verbatim (delta+varint
//! bytes), so encoded size ≈ in-memory size and the Figure 6 accounting
//! holds on disk too.
//!
//! Layout: magic, version, counts, doc lengths, max-tf table, then one
//! `(len, byte_len, bytes)` record per term. Integrity (checksums, torn
//! writes) is layered above by `tsearch-store`; this codec only concerns
//! itself with structure.

use crate::index::InvertedIndex;
use crate::postings::PostingsList;
use bytes::{Buf, BufMut};

const MAGIC: &[u8; 4] = b"TIDX";
const VERSION: u32 = 1;

/// Index codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCodecError {
    /// Input is not a TIDX blob.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// Input ended early or sizes are inconsistent.
    Truncated,
}

impl std::fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexCodecError::BadMagic => write!(f, "not a TIDX index blob"),
            IndexCodecError::BadVersion(v) => write!(f, "unsupported TIDX version {v}"),
            IndexCodecError::Truncated => write!(f, "TIDX blob truncated"),
        }
    }
}

impl std::error::Error for IndexCodecError {}

/// Serializes an index to bytes.
pub fn encode_index(index: &InvertedIndex) -> Vec<u8> {
    let num_docs = index.num_docs();
    let num_terms = index.num_terms();
    let mut out =
        Vec::with_capacity(32 + num_docs * 4 + num_terms * 12 + index.size_breakdown().total());
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(num_docs as u32);
    out.put_u32_le(num_terms as u32);
    out.put_u64_le(index.total_tokens());
    for d in 0..num_docs {
        out.put_u32_le(index.doc_len(d as u32));
    }
    for t in 0..num_terms {
        out.put_u32_le(index.max_tf(t as u32));
    }
    for t in 0..num_terms {
        let list = index.postings(t as u32);
        let (len, bytes) = list.raw_parts();
        out.put_u32_le(len);
        out.put_u32_le(bytes.len() as u32);
        out.put_slice(bytes);
    }
    out
}

/// Deserializes an index from bytes.
pub fn decode_index(mut bytes: &[u8]) -> Result<InvertedIndex, IndexCodecError> {
    if bytes.remaining() < 24 {
        return Err(IndexCodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    bytes.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IndexCodecError::BadMagic);
    }
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(IndexCodecError::BadVersion(version));
    }
    let num_docs = bytes.get_u32_le() as usize;
    let num_terms = bytes.get_u32_le() as usize;
    let total_tokens = bytes.get_u64_le();
    if bytes.remaining() < num_docs * 4 {
        return Err(IndexCodecError::Truncated);
    }
    let doc_lens: Vec<u32> = (0..num_docs).map(|_| bytes.get_u32_le()).collect();
    if bytes.remaining() < num_terms * 4 {
        return Err(IndexCodecError::Truncated);
    }
    let max_tfs: Vec<u32> = (0..num_terms).map(|_| bytes.get_u32_le()).collect();
    let mut postings = Vec::with_capacity(num_terms);
    for _ in 0..num_terms {
        if bytes.remaining() < 8 {
            return Err(IndexCodecError::Truncated);
        }
        let len = bytes.get_u32_le();
        let byte_len = bytes.get_u32_le() as usize;
        if bytes.remaining() < byte_len {
            return Err(IndexCodecError::Truncated);
        }
        let raw = bytes[..byte_len].to_vec();
        bytes.advance(byte_len);
        postings.push(PostingsList::from_raw_parts(len, raw).ok_or(IndexCodecError::Truncated)?);
    }
    Ok(InvertedIndex::from_parts(
        postings,
        doc_lens,
        total_tokens,
        max_tfs,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;

    fn sample_index() -> InvertedIndex {
        let docs: Vec<Vec<u32>> =
            vec![vec![0, 1, 1, 2], vec![2, 2, 3], vec![0, 4, 4, 4, 1], vec![]];
        let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
        InvertedIndex::build(&refs, 6)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let index = sample_index();
        let blob = encode_index(&index);
        let back = decode_index(&blob).unwrap();
        assert_eq!(back.num_docs(), index.num_docs());
        assert_eq!(back.num_terms(), index.num_terms());
        assert_eq!(back.total_tokens(), index.total_tokens());
        for t in 0..index.num_terms() as u32 {
            assert_eq!(back.postings_vec(t), index.postings_vec(t), "term {t}");
            assert_eq!(back.max_tf(t), index.max_tf(t));
            assert_eq!(back.doc_freq(t), index.doc_freq(t));
        }
        for d in 0..index.num_docs() as u32 {
            assert_eq!(back.doc_len(d), index.doc_len(d));
        }
        assert!((back.avg_doc_len() - index.avg_doc_len()).abs() < 1e-12);
    }

    #[test]
    fn empty_index_roundtrips() {
        let index = InvertedIndex::build(&[], 0);
        let back = decode_index(&encode_index(&index)).unwrap();
        assert_eq!(back.num_docs(), 0);
        assert_eq!(back.num_terms(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            decode_index(b"nope").unwrap_err(),
            IndexCodecError::Truncated
        );
        assert_eq!(
            decode_index(b"XXXXxxxxxxxxxxxxxxxxxxxxxxxx").unwrap_err(),
            IndexCodecError::BadMagic
        );
    }

    #[test]
    fn rejects_future_version() {
        let mut blob = encode_index(&sample_index());
        blob[4] = 42;
        assert_eq!(
            decode_index(&blob).unwrap_err(),
            IndexCodecError::BadVersion(42)
        );
    }

    #[test]
    fn detects_truncation_at_every_section() {
        let blob = encode_index(&sample_index());
        // Cut in the header, the doc-lens table, and the postings region.
        for cut in [10, 20, blob.len() - 2] {
            assert_eq!(
                decode_index(&blob[..cut]).unwrap_err(),
                IndexCodecError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn encoded_size_close_to_memory_size() {
        let index = sample_index();
        let blob = encode_index(&index);
        let mem = index.size_breakdown().total();
        // Fixed tables dominate at toy scale; the invariant that matters
        // is no blow-up (e.g. no decimal text expansion).
        assert!(blob.len() <= mem + 64 + index.num_terms() * 8 + index.num_docs() * 4);
    }
}
