//! # tsearch-index
//!
//! Inverted index substrate for the TopPriv reproduction: compressed
//! postings lists (delta + varint), a plaintext document store, and the
//! size accounting used to reproduce Figure 6 (index size vs LDA model
//! size) and the PIR-padding argument from the paper's related work.
//!
//! ## Example
//!
//! ```
//! use tsearch_index::InvertedIndex;
//!
//! let docs: Vec<Vec<u32>> = vec![vec![0, 1, 1], vec![1, 2]];
//! let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
//! let index = InvertedIndex::build(&refs, 3);
//! assert_eq!(index.doc_freq(1), 2);
//! assert_eq!(index.term_freq(1, 0), 2);
//! ```

#![warn(missing_docs)]

pub mod docstore;
pub mod index;
pub mod postings;
pub mod serialize;
pub mod sharded;
pub mod stats;
pub mod varint;

pub use docstore::DocumentStore;
pub use index::{IndexSizeBreakdown, InvertedIndex};
pub use postings::{Posting, PostingsBuilder, PostingsList};
pub use serialize::{decode_index, encode_index, IndexCodecError};
pub use sharded::{ShardRouter, ShardedIndex, M_SHARD_POSTINGS, M_SHARD_TERMS};
pub use stats::{IndexStats, PIR_PAIR_BYTES};
