//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.
//!
//! Implemented locally so the store crate stays within the workspace's
//! approved dependency set; the container format needs nothing stronger —
//! it guards against torn writes and bit rot, not adversaries.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_detected() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let good = crc32(&data);
        data[500] ^= 0x01;
        assert_ne!(crc32(&data), good);
    }
}
