//! The belief engine: prior, posterior, and boost-in-belief computations
//! from Section IV-A/B of the paper.
//!
//! - Prior `Pr(t)`: the topic coverage of the corpus, Equation (1)
//!   (precomputed by the LDA model).
//! - Posterior `Pr(t|q)`: LDA fold-in inference over the query tokens.
//! - Boost `B(t|q) = Pr(t|q) − Pr(t)`: the quantity the `(ε1, ε2)` model
//!   constrains.
//!
//! The engine holds its model behind an [`Arc`]: one trained `LdaModel`
//! (the paper's ~140 MB table) is shared read-only by every belief
//! engine, ghost generator, and service session built from it, which is
//! what lets `toppriv-service` run thousands of tenants against a single
//! in-memory model.

use std::sync::Arc;
use tsearch_lda::{InferenceConfig, Inferencer, LdaModel};
use tsearch_text::TermId;

/// Belief computations bound to one (shared) LDA model.
#[derive(Debug, Clone)]
pub struct BeliefEngine {
    model: Arc<LdaModel>,
    config: InferenceConfig,
}

impl BeliefEngine {
    /// Creates a belief engine with default inference parameters.
    pub fn new(model: Arc<LdaModel>) -> Self {
        Self {
            model,
            config: InferenceConfig::default(),
        }
    }

    /// Creates a belief engine with explicit inference parameters.
    pub fn with_config(model: Arc<LdaModel>, config: InferenceConfig) -> Self {
        assert!(config.sweeps > config.burn_in, "need post-burn-in sweeps");
        Self { model, config }
    }

    /// The underlying model.
    pub fn model(&self) -> &LdaModel {
        &self.model
    }

    /// A new shared handle to the underlying model.
    pub fn model_arc(&self) -> Arc<LdaModel> {
        Arc::clone(&self.model)
    }

    /// The inferencer view over the shared model.
    fn inferencer(&self) -> Inferencer<'_> {
        Inferencer::with_config(&self.model, self.config)
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.model.num_topics()
    }

    /// The corpus prior `Pr(t)`.
    pub fn prior(&self) -> &[f64] {
        self.model.prior()
    }

    /// Posterior `Pr(t|q)` of one query.
    pub fn posterior(&self, tokens: &[TermId]) -> Vec<f64> {
        self.inferencer().infer(tokens)
    }

    /// Boost in belief `B(t|q)` of one query, for all topics.
    pub fn boost(&self, tokens: &[TermId]) -> Vec<f64> {
        Self::boost_from_posterior(&self.posterior(tokens), self.prior())
    }

    /// Converts a posterior into boosts against `prior`.
    pub fn boost_from_posterior(posterior: &[f64], prior: &[f64]) -> Vec<f64> {
        debug_assert_eq!(posterior.len(), prior.len());
        posterior
            .iter()
            .zip(prior)
            .map(|(&post, &pri)| post - pri)
            .collect()
    }

    /// Cycle posterior per Equation (2), from cached per-query posteriors.
    pub fn cycle_posterior(posteriors: &[Vec<f64>]) -> Vec<f64> {
        Inferencer::combine_posteriors(posteriors)
    }

    /// Cycle boosts: `B(t|C)` for all topics, from cached posteriors.
    pub fn cycle_boost(&self, posteriors: &[Vec<f64>]) -> Vec<f64> {
        Self::boost_from_posterior(&Self::cycle_posterior(posteriors), self.prior())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_lda::{LdaConfig, LdaTrainer};

    fn trained_model() -> Arc<LdaModel> {
        let mut docs = Vec::new();
        for d in 0..40 {
            let base: u32 = if d % 2 == 0 { 0 } else { 5 };
            docs.push((0..30).map(|i| base + (i % 5) as u32).collect::<Vec<_>>());
        }
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        Arc::new(LdaTrainer::train(
            &refs,
            10,
            LdaConfig {
                iterations: 60,
                alpha: Some(0.5),
                ..LdaConfig::with_topics(2)
            },
        ))
    }

    #[test]
    fn boosts_sum_to_zero() {
        let engine = BeliefEngine::new(trained_model());
        let boosts = engine.boost(&[0, 1, 2]);
        // Posterior and prior both sum to 1, so boosts sum to 0.
        let sum: f64 = boosts.iter().sum();
        assert!(sum.abs() < 1e-9, "boost sum {sum}");
    }

    #[test]
    fn on_topic_query_boosts_its_topic() {
        let model = trained_model();
        let engine = BeliefEngine::new(model.clone());
        let low_topic = if model.phi(0, 0) > model.phi(1, 0) {
            0
        } else {
            1
        };
        let boosts = engine.boost(&[0, 1, 2, 3]);
        assert!(
            boosts[low_topic] > 0.0,
            "topic {low_topic} should gain: {boosts:?}"
        );
        assert!(boosts[1 - low_topic] < 0.0);
    }

    #[test]
    fn cycle_boost_averages() {
        let engine = BeliefEngine::new(trained_model());
        let p1 = engine.posterior(&[0, 1]);
        let p2 = engine.posterior(&[5, 6]);
        let cycle = engine.cycle_boost(&[p1.clone(), p2.clone()]);
        let prior = engine.prior();
        for t in 0..2 {
            let expected = (p1[t] + p2[t]) / 2.0 - prior[t];
            assert!((cycle[t] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn mixing_an_off_topic_query_reduces_boost() {
        let model = trained_model();
        let engine = BeliefEngine::new(model.clone());
        let low_topic = if model.phi(0, 0) > model.phi(1, 0) {
            0
        } else {
            1
        };
        let p_user = engine.posterior(&[0, 1, 2, 3]);
        let p_ghost = engine.posterior(&[5, 6, 7, 8]);
        let solo = BeliefEngine::boost_from_posterior(&p_user, engine.prior());
        let mixed = engine.cycle_boost(&[p_user.clone(), p_ghost]);
        assert!(
            mixed[low_topic] < solo[low_topic],
            "ghost should dilute the genuine topic"
        );
    }

    #[test]
    fn engines_share_one_model_allocation() {
        let model = trained_model();
        let a = BeliefEngine::new(model.clone());
        let b = a.clone();
        let c = BeliefEngine::new(a.model_arc());
        assert_eq!(Arc::strong_count(&model), 4);
        assert!(std::ptr::eq(a.model(), b.model()));
        assert!(std::ptr::eq(a.model(), c.model()));
    }
}
