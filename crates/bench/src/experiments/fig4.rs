//! Figure 4: topical exposure of the PDX query-embellishment baseline at
//! expansion factors 2×–16×, as a function of the relevance threshold used
//! to define the user intention.
//!
//! For each (model, factor, query): `qe` is the PDX-embellished query and
//! the exposure is `max_{t∈U(ε1)} B(t|qe)` where `U(ε1)` comes from the
//! *unembellished* query's boosts.

use crate::context::ExperimentContext;
use crate::scale::Scale;
use crate::table::{pct, ResultTable};
use toppriv_baselines::{PdxConfig, PdxEmbellisher, Thesaurus, ThesaurusConfig};
use toppriv_core::BeliefEngine;

/// Builds the thesaurus and per-term IDFs the PDX baseline needs.
pub fn build_pdx_inputs(ctx: &ExperimentContext) -> (Thesaurus, Vec<f64>) {
    let docs = ctx.corpus.token_docs();
    let thesaurus = Thesaurus::build(&docs, ctx.corpus.vocab.len(), ThesaurusConfig::default());
    let num_docs = ctx.corpus.num_docs();
    let idfs: Vec<f64> = (0..ctx.corpus.vocab.len() as u32)
        .map(|t| ctx.corpus.vocab.idf(t, num_docs))
        .collect();
    (thesaurus, idfs)
}

/// Per-query boost pair: `(B(t|qu), B(t|qe))`.
type BoostPair = (Vec<f64>, Vec<f64>);
/// Per-model results: `(K, [(factor, per-query boost pairs)])`.
type ModelFactorBoosts = (usize, Vec<(usize, Vec<BoostPair>)>);

/// Runs the Figure 4 sweep: one table per expansion factor.
pub fn run(ctx: &ExperimentContext) -> Vec<ResultTable> {
    let (thesaurus, idfs) = build_pdx_inputs(ctx);
    let queries = ctx.sweep_queries();

    // Per (model, factor): for each query, the solo boosts B(t|qu) and the
    // embellished boosts B(t|qe). Computed in parallel across models.
    let per_model: Vec<ModelFactorBoosts> = std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .models
            .iter()
            .map(|(k, model)| {
                let thesaurus = &thesaurus;
                let idfs = &idfs;
                s.spawn(move || {
                    let belief = BeliefEngine::new(model.clone());
                    let solo: Vec<Vec<f64>> =
                        queries.iter().map(|q| belief.boost(&q.tokens)).collect();
                    let mut by_factor = Vec::new();
                    for &factor in &ctx.scale.expansion_factors {
                        let pdx = PdxEmbellisher::new(
                            thesaurus,
                            idfs.clone(),
                            PdxConfig {
                                expansion_factor: factor,
                                ..PdxConfig::default()
                            },
                        );
                        let pairs: Vec<BoostPair> = queries
                            .iter()
                            .zip(&solo)
                            .map(|(q, solo_boosts)| {
                                let qe = pdx.embellish(&q.tokens);
                                (solo_boosts.clone(), belief.boost(&qe.tokens))
                            })
                            .collect();
                        by_factor.push((factor, pairs));
                    }
                    (*k, by_factor)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig4 worker panicked"))
            .collect()
    });

    // Render one table per factor: rows = ε1 grid, columns = models.
    let mut tables = Vec::new();
    for (fi, &factor) in ctx.scale.expansion_factors.iter().enumerate() {
        let mut header = vec!["eps_pct".to_string()];
        header.extend(per_model.iter().map(|(k, _)| Scale::model_label(*k)));
        let mut table = ResultTable::new(
            format!("fig4_{factor}x_pdx_exposure"),
            format!("PDX exposure max B(t|qe) over t in U (%), {factor}x expansion"),
            header,
        );
        for &eps in &ctx.scale.eps_grid {
            let mut row = vec![pct(eps)];
            for (_, by_factor) in &per_model {
                let (_, pairs) = &by_factor[fi];
                let mut total = 0.0;
                let mut counted = 0usize;
                for (solo, embellished) in pairs {
                    let intention: Vec<usize> = solo
                        .iter()
                        .enumerate()
                        .filter(|&(_, &b)| b > eps)
                        .map(|(t, _)| t)
                        .collect();
                    if intention.is_empty() {
                        continue;
                    }
                    total += toppriv_core::exposure(embellished, &intention);
                    counted += 1;
                }
                row.push(pct(if counted == 0 {
                    0.0
                } else {
                    total / counted as f64
                }));
            }
            table.push_row(row);
        }
        tables.push(table);
    }
    tables
}
