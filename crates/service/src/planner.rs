//! Cross-session ghost planning: shared decoys push fleet cost below υ×.
//!
//! Every protected query costs the engine υ submissions (the cycle
//! length), so a fleet of N tenants multiplies engine load by ~υ even
//! though most decoys are interchangeable: a ghost query only has to
//! *mask* — boost some non-intention topic — and any other tenant's
//! already-planned submission with the same topic posterior masks just
//! as well. The [`GhostPlanner`] sits between
//! [`SessionManager::formulate_cycle`] and the [`crate::CycleScheduler`]
//! and exploits that in two moves:
//!
//! 1. **Reuse (substitution).** A time-decayed cross-tenant topic index
//!    tracks which masking topics the fleet is currently submitting.
//!    When a new cycle is formulated, each of its ghost members is
//!    matched against other tenants' still-queued submissions on the
//!    same dominant topic with a **disjoint intention**; if swapping the
//!    member for the donor's token bag keeps the cycle certified (an
//!    exact O(K) boost update via
//!    [`toppriv_core::substitute_in_cycle_boosts`] — no re-inference),
//!    the member is rewritten in place before the session commits it.
//! 2. **Coalescing.** Planned submissions with an identical normalized
//!    token bag and result depth ([`crate::CacheKey`]) across different
//!    tenants are merged into **one** queue entry tagged with every
//!    subscribing tenant ([`crate::SubmissionTag`]). The scheduler
//!    resolves it once — one engine submission — and fans the outcome
//!    out to all subscribers; each subscriber's trace accounting was
//!    already debited at commit time with the posteriors *as submitted*,
//!    exactly as if it owned the decoy.
//!
//! ## Privacy argument
//!
//! Per-session accounting is untouched: a session debits the posterior
//! of every member it committed, shared or not, so Equation 2's trace
//! exposure and the per-cycle `(ε1, ε2)` certificate are computed over
//! the session's true submission stream. Substitutions are only accepted
//! when the rewritten cycle still certifies (exposure within the mask
//! and not above the pre-rewrite exposure) and donor/acceptor intentions
//! are disjoint — a donor never amplifies a topic the acceptor is trying
//! to hide, and vice versa. Coalescing merges only *identical* token
//! bags, which the engine could never tell apart anyway (the shared
//! result cache already served duplicates from one computation; the
//! planner merely avoids enqueueing them twice), so the engine-side
//! adversary's view of the merged shard logs only ever *shrinks*.
//! The `planner` bench experiment replays the naive-Bayes collusion
//! attack on merged shard logs with sharing enabled to confirm this.

use crate::cache::CacheKey;
use crate::scheduler::{PlannedQuery, SubmissionTag};
use crate::session::{FormulatedCycle, ServiceError, SessionManager};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use toppriv_core::{substitute_in_cycle_boosts, CycleResult, PrivacyMetrics};
use tsearch_text::TermId;

/// Tuning knobs for the cross-session planner.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Maximum tenants sharing one queue entry (bounds fan-out work per
    /// submission and keeps any single entry from becoming a hot spot).
    pub max_subscribers: usize,
    /// Maximum live offers in the match index (bounds planner memory).
    pub max_offers: usize,
    /// When false, only exact coalescing runs — no member substitution.
    pub reuse: bool,
    /// Per-cycle multiplicative decay of the topic-importance index.
    pub topic_decay: f64,
    /// Slack for the certification comparisons (floating-point headroom,
    /// not a privacy relaxation).
    pub exposure_tolerance: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_subscribers: 8,
            max_offers: 4096,
            reuse: true,
            topic_decay: 0.98,
            exposure_tolerance: 1e-9,
        }
    }
}

/// One still-queued submission another tenant may reuse or coalesce onto.
struct Offer {
    /// Index of the backing entry in `PlannerState::queue`.
    queue_index: usize,
    session: String,
    /// The donor cycle's certified intention (substitution requires
    /// disjointness with the acceptor's).
    intention: Vec<usize>,
    /// The donor member's topic posterior (what substitution debits).
    posterior: Vec<f64>,
    tokens: Vec<TermId>,
    k: usize,
}

/// Mutable planner state, all behind one mutex: the pending queue, the
/// match index over it, and the decayed topic-importance weights.
#[derive(Default)]
struct PlannerState {
    /// Manager model epoch the offers were built against; a model swap
    /// invalidates all held posteriors, so the index resets.
    model_epoch: u64,
    /// Planned-but-not-yet-drained submissions (some carry subscribers).
    queue: Vec<PlannedQuery>,
    offers: Vec<Offer>,
    /// First offer per normalized submission key.
    by_key: HashMap<CacheKey, usize>,
    /// Offers per dominant posterior topic.
    by_topic: HashMap<usize, Vec<usize>>,
    /// Time-decayed importance of each topic over recent fleet traffic.
    topic_weight: Vec<f64>,
}

/// The cross-session ghost planner. See the module docs for the design;
/// see [`GhostPlanner::plan_cycle`] for the per-cycle pipeline.
pub struct GhostPlanner {
    manager: Arc<SessionManager>,
    config: PlannerConfig,
    state: Mutex<PlannerState>,
}

impl GhostPlanner {
    /// A planner over `manager` with default tuning.
    pub fn new(manager: Arc<SessionManager>) -> Self {
        Self::with_config(manager, PlannerConfig::default())
    }

    /// A planner over `manager` with explicit tuning.
    pub fn with_config(manager: Arc<SessionManager>, config: PlannerConfig) -> Self {
        GhostPlanner {
            manager,
            config,
            state: Mutex::new(PlannerState::default()),
        }
    }

    /// The managed session fleet.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Submissions currently held in the planner queue.
    pub fn queue_len(&self) -> usize {
        self.state.lock().expect("planner poisoned").queue.len()
    }

    /// A snapshot of the decayed cross-tenant topic-importance index.
    pub fn topic_weights(&self) -> Vec<f64> {
        self.state
            .lock()
            .expect("planner poisoned")
            .topic_weight
            .clone()
    }

    /// Plans one cycle through the cross-session pipeline: formulate →
    /// rewrite ghost members against other tenants' queued submissions →
    /// commit (trace accounting, pacing, audit registration) → coalesce
    /// identical submissions into shared queue entries. Returns the
    /// cycle's ground-truth report (post-rewrite); the planned
    /// submissions accumulate in the planner queue until
    /// [`GhostPlanner::take_queue`].
    pub fn plan_cycle(
        &self,
        id: &str,
        tokens: &[TermId],
        k: usize,
    ) -> Result<CycleResult, ServiceError> {
        let mut fc = self.manager.formulate_cycle(id, tokens, k)?;
        let metrics = self.manager.metrics_registry().clone();
        // One lock for the whole rewrite+commit+coalesce pipeline: the
        // match index must not move under us between choosing a donor
        // and tagging its queue entry. Lock order is planner → session
        // table → session (commit_cycle); `take_queue` takes only the
        // planner lock, so the order is acyclic.
        let mut state = self.state.lock().expect("planner poisoned");
        let epoch = self.manager.model_epoch();
        if state.model_epoch != epoch {
            // Posteriors in the index were inferred under an older model;
            // drop the match index (queued entries stay — they are valid
            // submissions regardless) and restart topic accounting.
            state.offers.clear();
            state.by_key.clear();
            state.by_topic.clear();
            state.topic_weight.clear();
            state.model_epoch = epoch;
        }
        Self::update_topic_index(&mut state, &fc, self.config.topic_decay);
        if self.config.reuse {
            let reused = self.substitute_members(&mut state, &mut fc);
            for _ in 0..reused {
                metrics.record_planner_reuse();
            }
        }
        // Posteriors keyed by submission identity, captured before commit
        // consumes `fc` (the pacer shuffles member order, so plan entries
        // are re-matched to members by token bag, not by index).
        let mut member_posteriors: HashMap<CacheKey, Vec<f64>> = HashMap::new();
        for (q, p) in fc.report.cycle.iter().zip(&fc.posteriors) {
            member_posteriors
                .entry(CacheKey::new(&q.tokens, fc.k))
                .or_insert_with(|| p.clone());
        }
        let intention = fc.report.intention.clone();
        let (report, plan) = self.manager.commit_cycle(fc)?;
        for planned in plan {
            let key = CacheKey::new(&planned.scheduled.tokens, planned.k);
            if let Some(&oi) = state.by_key.get(&key) {
                let donor_queue = state.offers[oi].queue_index;
                let donor_session = state.offers[oi].session.clone();
                let entry = &mut state.queue[donor_queue];
                if donor_session != planned.session && entry.fanout() < self.config.max_subscribers
                {
                    // Coalesce: the donor's entry is submitted once; this
                    // tenant subscribes to its outcome.
                    if entry.subscribers.is_empty() {
                        entry.subscribers.push(SubmissionTag {
                            session: entry.session.clone(),
                            cycle_id: entry.scheduled.cycle_id,
                            is_genuine: entry.scheduled.is_genuine,
                        });
                    }
                    entry.subscribers.push(SubmissionTag {
                        session: planned.session.clone(),
                        cycle_id: planned.scheduled.cycle_id,
                        is_genuine: planned.scheduled.is_genuine,
                    });
                    metrics.record_planner_coalesced();
                    continue;
                }
            }
            let queue_index = state.queue.len();
            let (session, entry_k) = (planned.session.clone(), planned.k);
            let entry_tokens = planned.scheduled.tokens.clone();
            state.queue.push(planned);
            // Register the new entry as an offer for later cycles. When
            // the key already has an offer (its entry was full, or owned
            // by this same session), re-point it at the fresh entry so
            // the next group of tenants coalesces here instead of each
            // queueing solo — sharing stays open past `max_subscribers`.
            if let Some(posterior) = member_posteriors.get(&key) {
                if let Some(&oi) = state.by_key.get(&key) {
                    state.offers[oi].queue_index = queue_index;
                    state.offers[oi].session = session;
                    state.offers[oi].intention = intention.clone();
                } else if state.offers.len() < self.config.max_offers {
                    if let Some(topic) = argmax(posterior) {
                        let oi = state.offers.len();
                        state.offers.push(Offer {
                            queue_index,
                            session,
                            intention: intention.clone(),
                            posterior: posterior.clone(),
                            tokens: entry_tokens,
                            k: entry_k,
                        });
                        state.by_key.insert(key, oi);
                        state.by_topic.entry(topic).or_default().push(oi);
                    }
                }
            }
        }
        Ok(report)
    }

    /// Drains the planner queue for the [`crate::CycleScheduler`]: the
    /// match index is cleared (its offers point into the drained queue),
    /// the topic-importance weights persist, and the returned
    /// submissions are in global time order.
    pub fn take_queue(&self) -> Vec<PlannedQuery> {
        let mut state = self.state.lock().expect("planner poisoned");
        state.offers.clear();
        state.by_key.clear();
        state.by_topic.clear();
        let mut queue = std::mem::take(&mut state.queue);
        queue.sort_by(|a, b| {
            a.scheduled
                .time_secs
                .partial_cmp(&b.scheduled.time_secs)
                .expect("submission times are finite")
        });
        queue
    }

    /// Decays the topic index and credits each member's dominant topic.
    fn update_topic_index(state: &mut PlannerState, fc: &FormulatedCycle, decay: f64) {
        let num_topics = fc.posteriors.first().map_or(0, Vec::len);
        if state.topic_weight.len() != num_topics {
            state.topic_weight = vec![0.0; num_topics];
        }
        for w in &mut state.topic_weight {
            *w *= decay;
        }
        for posterior in &fc.posteriors {
            if let Some(topic) = argmax(posterior) {
                state.topic_weight[topic] += 1.0;
            }
        }
    }

    /// Rewrites ghost members of `fc` in place with donors from the
    /// match index, keeping the cycle certified. Returns how many
    /// members were substituted.
    fn substitute_members(&self, state: &mut PlannerState, fc: &mut FormulatedCycle) -> usize {
        if state.offers.is_empty() || fc.report.cycle_boosts.is_empty() {
            return 0;
        }
        // No duplicate submissions within one cycle: a member may not be
        // rewritten onto a token bag the cycle already contains.
        let mut used_keys: HashSet<CacheKey> = fc
            .report
            .cycle
            .iter()
            .map(|q| CacheKey::new(&q.tokens, fc.k))
            .collect();
        // Hot masking topics first: members masking what the fleet is
        // already submitting are the likeliest (and cheapest) matches.
        let mut candidates: Vec<(usize, usize)> = fc
            .report
            .cycle
            .iter()
            .enumerate()
            .filter(|(i, q)| *i != fc.report.genuine_index && !q.is_genuine)
            .filter_map(|(i, q)| q.masking_topic.map(|t| (i, t)))
            .collect();
        candidates.sort_by(|a, b| {
            let wa = state.topic_weight.get(a.1).copied().unwrap_or(0.0);
            let wb = state.topic_weight.get(b.1).copied().unwrap_or(0.0);
            wb.partial_cmp(&wa).expect("weights are finite")
        });
        let tol = self.config.exposure_tolerance;
        let mut reused = 0;
        for (i, topic) in candidates {
            let Some(offer_ids) = state.by_topic.get(&topic) else {
                continue;
            };
            let mut chosen: Option<usize> = None;
            for &oi in offer_ids {
                let offer = &state.offers[oi];
                if offer.session == fc.session
                    || offer.k != fc.k
                    || state.queue[offer.queue_index].fanout() >= self.config.max_subscribers
                {
                    continue;
                }
                // Disjoint intentions: the donor must not be covering a
                // topic this session protects, nor the reverse.
                if offer
                    .intention
                    .iter()
                    .any(|t| fc.report.intention.contains(t))
                {
                    continue;
                }
                let key = CacheKey::new(&offer.tokens, offer.k);
                if used_keys.contains(&key) {
                    continue;
                }
                // Exact O(K) re-certification of the rewritten cycle.
                let new_boosts = substitute_in_cycle_boosts(
                    &fc.report.cycle_boosts,
                    &fc.posteriors[i],
                    &offer.posterior,
                    fc.boost_support,
                );
                let mut m = PrivacyMetrics::from_boosts(&new_boosts, &fc.report.intention);
                m.cycle_len = fc.report.metrics.cycle_len;
                m.generation_secs = fc.report.metrics.generation_secs;
                let satisfied = fc
                    .requirement
                    .is_satisfied(&new_boosts, &fc.report.intention);
                // Strictly conservative acceptance: the intention must
                // stay out-boosted by a decoy topic (not merely below
                // ε2), exposure must not rise, and a certified cycle
                // must stay certified. A rejected donor just means the
                // member keeps its generated decoy.
                if m.exposure > m.mask_level + tol
                    || m.exposure > fc.report.metrics.exposure + tol
                    || (fc.report.satisfied && !satisfied)
                {
                    continue;
                }
                // Accept: rewrite the member as the donor's submission.
                fc.report.cycle[i].tokens = offer.tokens.clone();
                fc.report.cycle[i].masking_topic = argmax(&offer.posterior);
                fc.posteriors[i] = offer.posterior.clone();
                fc.report.cycle_boosts = new_boosts;
                fc.report.metrics = m;
                fc.report.satisfied = satisfied;
                used_keys.insert(key);
                chosen = Some(oi);
                break;
            }
            if chosen.is_some() {
                reused += 1;
            }
        }
        reused
    }
}

/// Index of the largest value, `None` for an empty slice.
fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if best.is_none_or(|(_, bv)| v > bv) {
            best = Some((i, v));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::CycleScheduler;
    use std::collections::HashMap;
    use tsearch_corpus::{generate_workload, CorpusConfig, SyntheticCorpus, WorkloadConfig};
    use tsearch_lda::{LdaConfig, LdaTrainer};
    use tsearch_search::{ScoringModel, SearchEngine};
    use tsearch_text::Analyzer;

    struct Stack {
        corpus: SyntheticCorpus,
        engine: Arc<SearchEngine>,
        model: Arc<tsearch_lda::LdaModel>,
    }

    fn stack() -> Stack {
        let corpus = SyntheticCorpus::generate(CorpusConfig {
            num_docs: 240,
            num_topics: 8,
            terms_per_topic: 50,
            ..CorpusConfig::default()
        });
        let docs = corpus.token_docs();
        let texts: Vec<String> = corpus.docs.iter().map(|d| d.text.clone()).collect();
        let engine = Arc::new(SearchEngine::build(
            &docs,
            &texts,
            Analyzer::new(),
            corpus.vocab.clone(),
            ScoringModel::TfIdfCosine,
        ));
        let model = Arc::new(LdaTrainer::train(
            &docs,
            corpus.vocab.len(),
            LdaConfig {
                iterations: 20,
                ..LdaConfig::with_topics(8)
            },
        ));
        Stack {
            corpus,
            engine,
            model,
        }
    }

    fn manager(stack: &Stack) -> Arc<SessionManager> {
        Arc::new(
            SessionManager::new(stack.engine.clone(), stack.model.clone())
                .with_cache(4096)
                .with_fleet_seed(0xF1EE7),
        )
    }

    #[test]
    fn identical_queries_coalesce_across_tenants() {
        let stack = stack();
        let manager = manager(&stack);
        let planner = GhostPlanner::new(manager.clone());
        let query = generate_workload(
            &stack.corpus,
            &WorkloadConfig {
                num_queries: 1,
                ..WorkloadConfig::default()
            },
        )
        .remove(0);
        for s in 0..4 {
            manager.open_session(&format!("t{s}")).unwrap();
        }
        let mut members = 0usize;
        for s in 0..4 {
            let report = planner
                .plan_cycle(&format!("t{s}"), &query.tokens, 10)
                .unwrap();
            members += report.cycle_len();
        }
        let queue = planner.take_queue();
        let fanout: usize = queue.iter().map(|p| p.fanout()).sum();
        // Ghost generation is content-seeded under the shared fleet
        // secret, so all four tenants formulated the identical cycle:
        // every submission beyond the first tenant's coalesces.
        assert_eq!(fanout, members, "every member is represented by a tag");
        assert!(
            queue.len() < members,
            "identical cycles must share queue entries ({} vs {members})",
            queue.len()
        );
        let m = manager.metrics_registry().snapshot();
        assert!(m.planner_coalesced > 0);
        assert!(
            queue
                .windows(2)
                .all(|w| w[0].scheduled.time_secs <= w[1].scheduled.time_secs),
            "take_queue returns global time order"
        );
        assert_eq!(planner.queue_len(), 0, "take_queue drains the queue");
    }

    #[test]
    fn coalesced_drain_matches_unplanned_genuine_hits() {
        let stack = stack();
        let queries = generate_workload(
            &stack.corpus,
            &WorkloadConfig {
                num_queries: 6,
                ..WorkloadConfig::default()
            },
        );
        let baseline = manager(&stack);
        let planned = manager(&stack);
        const SESSIONS: usize = 4;
        for m in [&baseline, &planned] {
            for s in 0..SESSIONS {
                m.open_session(&format!("t{s}")).unwrap();
            }
        }
        // Baseline: every tenant plans alone.
        let mut plans = Vec::new();
        for s in 0..SESSIONS {
            for q in 0..3 {
                plans.push(
                    baseline
                        .plan_cycle(
                            &format!("t{s}"),
                            &queries[(s + q) % queries.len()].tokens,
                            10,
                        )
                        .unwrap(),
                );
            }
        }
        let base_outcomes = CycleScheduler::for_manager(&baseline, 4).run(plans);
        // Planned: same workload through the planner.
        let planner = GhostPlanner::new(planned.clone());
        for s in 0..SESSIONS {
            for q in 0..3 {
                planner
                    .plan_cycle(
                        &format!("t{s}"),
                        &queries[(s + q) % queries.len()].tokens,
                        10,
                    )
                    .unwrap();
            }
        }
        let plan_outcomes =
            CycleScheduler::for_manager(&planned, 4).run(vec![planner.take_queue()]);
        // Same fleet seed → same genuine members → identical hits per
        // (session, cycle): sharing decoys must not change what any
        // tenant's genuine queries return.
        let collect = |outcomes: &[crate::SubmitOutcome]| {
            let mut hits: HashMap<(String, usize), Vec<(u32, u64)>> = HashMap::new();
            for o in outcomes {
                if o.is_genuine {
                    hits.insert(
                        (o.session.clone(), o.cycle_id),
                        o.hits
                            .iter()
                            .map(|h| (h.doc_id, h.score.to_bits()))
                            .collect(),
                    );
                }
            }
            hits
        };
        assert_eq!(collect(&base_outcomes), collect(&plan_outcomes));
        // And the engine saw strictly fewer submissions with sharing on.
        let base_subs = baseline.metrics_registry().snapshot().engine_submits;
        let plan_subs = planned.metrics_registry().snapshot().engine_submits;
        assert!(
            plan_subs < base_subs,
            "planner must cut engine submissions ({plan_subs} vs {base_subs})"
        );
    }

    #[test]
    fn substitutions_keep_cycles_certified() {
        let stack = stack();
        let manager = manager(&stack);
        let planner = GhostPlanner::with_config(
            manager.clone(),
            PlannerConfig {
                max_subscribers: 16,
                ..PlannerConfig::default()
            },
        );
        let queries = generate_workload(
            &stack.corpus,
            &WorkloadConfig {
                num_queries: 8,
                ..WorkloadConfig::default()
            },
        );
        const SESSIONS: usize = 8;
        for s in 0..SESSIONS {
            manager.open_session(&format!("t{s}")).unwrap();
        }
        for round in 0..3 {
            for s in 0..SESSIONS {
                let q = &queries[(s + round) % queries.len()];
                let report = planner.plan_cycle(&format!("t{s}"), &q.tokens, 10).unwrap();
                // The fleet invariant must hold on every committed
                // (possibly rewritten) cycle.
                assert!(
                    report.metrics.exposure <= report.metrics.mask_level.max(0.01) + 1e-9,
                    "rewritten cycle violates masking: exposure {} mask {}",
                    report.metrics.exposure,
                    report.metrics.mask_level
                );
            }
        }
        assert!(!planner.topic_weights().is_empty());
        let outcomes = CycleScheduler::for_manager(&manager, 4).run(vec![planner.take_queue()]);
        assert!(!outcomes.is_empty());
        // Per-tenant accounting saw every member of every cycle.
        let snapshot = manager.metrics();
        for m in &snapshot.sessions {
            assert_eq!(m.cycles, 3);
        }
    }
}
