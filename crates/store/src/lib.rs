//! # tsearch-store
//!
//! On-disk persistence substrate: a checksummed container format, atomic
//! file replacement, and a manifest-backed artifact store.
//!
//! The paper's client keeps a ~140 MB LDA model on disk between sessions
//! (Section V-D); the search engine keeps its inverted index. Neither may
//! silently load a torn or bit-rotted file — a corrupted `Pr(w|t)` matrix
//! would mis-certify privacy requirements without any visible failure.
//! Every artifact is therefore framed with a CRC-32-checked header
//! ([`container`]), written via temp-file-plus-rename ([`atomic`]), and
//! tracked in a manifest ([`artifact::ArtifactStore`]).
//!
//! ## Example
//!
//! ```
//! use tsearch_store::{ArtifactStore, kind};
//!
//! let dir = std::env::temp_dir().join("tsearch-store-doc");
//! let mut store = ArtifactStore::open(&dir).unwrap();
//! store.put("lda-k200", kind::LDA_MODEL, b"...model bytes...").unwrap();
//! let bytes = store.get("lda-k200", kind::LDA_MODEL).unwrap();
//! assert_eq!(bytes, b"...model bytes...");
//! assert!(store.verify_all().is_empty());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod artifact;
pub mod atomic;
pub mod container;
pub mod crc32;

pub use artifact::{ArtifactError, ArtifactMeta, ArtifactStore};
pub use atomic::{atomic_write, sweep_temp_files};
pub use container::{kind, seal, unseal, unseal_kind, StoreError};
pub use crc32::{crc32, Crc32};
