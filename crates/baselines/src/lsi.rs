//! Latent Semantic Indexing (truncated SVD of the term–document matrix).
//!
//! Needed by the Murugesan & Clifton baseline (the paper's reference
//! \[10\]), which maps dictionary terms into a low-dimensional factor space
//! with LSI before forming canonical queries. Also discussed (and
//! dismissed for large corpora) in the paper's Appendix A.
//!
//! The left singular vectors of the tf-idf weighted term–document matrix
//! `A (V×D)` are computed by block subspace iteration on `A·Aᵀ`, touching
//! only the sparse nonzeros of `A` — no dense `V×D` materialization, which
//! is exactly the obstacle the paper cites for WSJ-scale LSA.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tsearch_text::TermId;

/// LSI training parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LsiConfig {
    /// Number of latent factors (reference \[10\] uses 30).
    pub factors: usize,
    /// Subspace-iteration rounds.
    pub iterations: usize,
    /// RNG seed for the starting block.
    pub seed: u64,
}

impl Default for LsiConfig {
    fn default() -> Self {
        Self {
            factors: 30,
            iterations: 30,
            seed: 0x151,
        }
    }
}

/// A trained LSI model: the top left singular vectors of the weighted
/// term–document matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LsiModel {
    factors: usize,
    vocab_size: usize,
    /// `U`, word-major: `term_factors[w * F + k]`.
    term_factors: Vec<f64>,
    /// Approximate singular values, descending.
    singular_values: Vec<f64>,
    /// Per-term idf used for query projection.
    idfs: Vec<f64>,
}

/// Sparse column-compressed view of the weighted term-doc matrix.
struct SparseMatrix {
    /// (term, weight) entries per document.
    cols: Vec<Vec<(u32, f64)>>,
}

impl SparseMatrix {
    /// y += A * x_col for every doc column: y[w] += weight * z[d] where
    /// z = Aᵀ x. Computes `A (Aᵀ x)` in two sparse passes.
    fn ata_multiply(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        for col in &self.cols {
            // z_d = Σ_w A[w,d] * x[w]
            let mut z = 0.0;
            for &(w, weight) in col {
                z += weight * x[w as usize];
            }
            if z == 0.0 {
                continue;
            }
            for &(w, weight) in col {
                y[w as usize] += weight * z;
            }
        }
    }
}

impl LsiModel {
    /// Trains LSI on token documents with `ln(1+tf)·idf` weighting.
    pub fn train(docs: &[&[TermId]], vocab_size: usize, config: LsiConfig) -> Self {
        assert!(config.factors >= 1);
        assert!(vocab_size > 0);
        let f = config.factors.min(vocab_size);
        // Document frequencies -> idf.
        let mut df = vec![0u32; vocab_size];
        for doc in docs {
            let mut seen: Vec<u32> = doc.to_vec();
            seen.sort_unstable();
            seen.dedup();
            for w in seen {
                df[w as usize] += 1;
            }
        }
        let n = docs.len().max(1) as f64;
        let idfs: Vec<f64> = df
            .iter()
            .map(|&d| {
                if d == 0 {
                    0.0
                } else {
                    (n / d as f64).ln().max(1e-9)
                }
            })
            .collect();
        // Sparse weighted matrix, one column per document.
        let cols: Vec<Vec<(u32, f64)>> = docs
            .iter()
            .map(|doc| {
                let mut sorted: Vec<u32> = doc.to_vec();
                sorted.sort_unstable();
                let mut entries = Vec::new();
                let mut i = 0;
                while i < sorted.len() {
                    let w = sorted[i];
                    let mut j = i;
                    while j < sorted.len() && sorted[j] == w {
                        j += 1;
                    }
                    let tf = (j - i) as f64;
                    let weight = (1.0 + tf.ln()) * idfs[w as usize];
                    if weight > 0.0 {
                        entries.push((w, weight));
                    }
                    i = j;
                }
                entries
            })
            .collect();
        let matrix = SparseMatrix { cols };

        // Block subspace iteration for the top-f eigenvectors of A Aᵀ.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut basis: Vec<Vec<f64>> = (0..f)
            .map(|_| (0..vocab_size).map(|_| rng.gen::<f64>() - 0.5).collect())
            .collect();
        orthonormalize(&mut basis);
        let mut scratch = vec![0.0f64; vocab_size];
        for _ in 0..config.iterations {
            for vec in basis.iter_mut() {
                matrix.ata_multiply(vec, &mut scratch);
                std::mem::swap(vec, &mut scratch);
            }
            orthonormalize(&mut basis);
        }
        // Rayleigh quotients give eigenvalues of A Aᵀ = squared singular
        // values.
        let mut eigen: Vec<(f64, Vec<f64>)> = basis
            .into_iter()
            .map(|v| {
                matrix.ata_multiply(&v, &mut scratch);
                let lambda: f64 = v.iter().zip(&scratch).map(|(a, b)| a * b).sum();
                (lambda.max(0.0), v)
            })
            .collect();
        eigen.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));

        let singular_values: Vec<f64> = eigen.iter().map(|(l, _)| l.sqrt()).collect();
        let mut term_factors = vec![0.0f64; vocab_size * f];
        for (k, (_, v)) in eigen.iter().enumerate() {
            for (w, &value) in v.iter().enumerate() {
                term_factors[w * f + k] = value;
            }
        }
        LsiModel {
            factors: f,
            vocab_size,
            term_factors,
            singular_values,
            idfs,
        }
    }

    /// Number of factors F.
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Vocabulary size V.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Approximate singular values, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// The factor-space embedding of one term (a row of `U`).
    pub fn term_vector(&self, term: TermId) -> &[f64] {
        let start = term as usize * self.factors;
        &self.term_factors[start..start + self.factors]
    }

    /// Projects a bag-of-words query into factor space: `Uᵀ q` with the
    /// same `ln(1+tf)·idf` weighting used in training.
    pub fn project_query(&self, tokens: &[TermId]) -> Vec<f64> {
        let mut point = vec![0.0f64; self.factors];
        let mut sorted: Vec<u32> = tokens.to_vec();
        sorted.sort_unstable();
        let mut i = 0;
        while i < sorted.len() {
            let w = sorted[i];
            let mut j = i;
            while j < sorted.len() && sorted[j] == w {
                j += 1;
            }
            let tf = (j - i) as f64;
            let weight = (1.0 + tf.ln()) * self.idfs[w as usize];
            let row = self.term_vector(w);
            for k in 0..self.factors {
                point[k] += weight * row[k];
            }
            i = j;
        }
        point
    }
}

/// Modified Gram–Schmidt orthonormalization in place. Degenerate vectors
/// are re-randomized deterministically.
fn orthonormalize(basis: &mut [Vec<f64>]) {
    let dim = basis.first().map(Vec::len).unwrap_or(0);
    for i in 0..basis.len() {
        for j in 0..i {
            let dot: f64 = basis[i].iter().zip(&basis[j]).map(|(a, b)| a * b).sum();
            let (left, right) = basis.split_at_mut(i);
            let vj = &left[j];
            for (a, b) in right[0].iter_mut().zip(vj) {
                *a -= dot * b;
            }
        }
        let norm: f64 = basis[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            // Deterministic fallback: unit vector on coordinate i.
            basis[i].iter_mut().for_each(|x| *x = 0.0);
            basis[i][i % dim.max(1)] = 1.0;
        } else {
            basis[i].iter_mut().for_each(|x| *x /= norm);
        }
    }
}

/// Cosine similarity in factor space.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint word blocks -> the top factors separate them.
    fn block_docs() -> Vec<Vec<TermId>> {
        let mut docs = Vec::new();
        for d in 0..60 {
            let base: u32 = if d % 2 == 0 { 0 } else { 6 };
            docs.push((0..12).map(|i| base + (i % 6) as u32).collect());
        }
        docs
    }

    fn train(factors: usize) -> LsiModel {
        let docs = block_docs();
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        LsiModel::train(
            &refs,
            12,
            LsiConfig {
                factors,
                iterations: 40,
                ..LsiConfig::default()
            },
        )
    }

    #[test]
    fn singular_values_descend() {
        let model = train(4);
        let sv = model.singular_values();
        assert_eq!(sv.len(), 4);
        for pair in sv.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9, "{sv:?}");
        }
        assert!(sv[0] > 0.0);
    }

    #[test]
    fn same_block_terms_are_close() {
        let model = train(4);
        // Terms 0 and 1 co-occur in every even doc; term 6 never with 0.
        let sim_within = cosine(model.term_vector(0), model.term_vector(1));
        let sim_across = cosine(model.term_vector(0), model.term_vector(6));
        assert!(
            sim_within > sim_across + 0.3,
            "within {sim_within} vs across {sim_across}"
        );
    }

    #[test]
    fn query_projection_matches_its_block() {
        let model = train(4);
        let q_low = model.project_query(&[0, 1, 2]);
        let q_high = model.project_query(&[6, 7, 8]);
        let d_low = model.project_query(&[0, 1, 2, 3, 4, 5]);
        assert!(cosine(&q_low, &d_low) > cosine(&q_high, &d_low) + 0.3);
    }

    #[test]
    fn projection_is_linear_in_tf() {
        let model = train(4);
        let single = model.project_query(&[0]);
        assert_eq!(single.len(), 4);
        // Repeating a term uses log-tf: weight grows but sublinearly.
        let double = model.project_query(&[0, 0]);
        let norm1: f64 = single.iter().map(|x| x * x).sum::<f64>().sqrt();
        let norm2: f64 = double.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm2 > norm1);
        assert!(norm2 < 2.0 * norm1);
    }

    #[test]
    fn deterministic() {
        let a = train(3);
        let b = train(3);
        assert_eq!(a.term_vector(0), b.term_vector(0));
    }

    #[test]
    fn factors_capped_by_vocab() {
        let docs = [vec![0u32, 1]];
        let refs: Vec<&[TermId]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = LsiModel::train(
            &refs,
            2,
            LsiConfig {
                factors: 10,
                iterations: 5,
                ..LsiConfig::default()
            },
        );
        assert_eq!(model.factors(), 2);
    }
}
