//! The generative corpus model.
//!
//! Substitutes for the Wall Street Journal corpus of the paper (see
//! DESIGN.md §2). Documents are drawn from an LDA-style generative process
//! over ground-truth topics with Zipfian term distributions, so the fitted
//! LDA models downstream recover topical structure the same way they do on
//! real news text.

use crate::dist::{sample_dirichlet, sample_log_normal, Categorical};
use crate::spec::{CorpusConfig, GeneratedDoc, TopicGroundTruth};
use crate::words::generate_words;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsearch_text::{StopwordList, TermId, Vocabulary, DEFAULT_STOPWORDS};

/// A fully generated synthetic corpus with ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The configuration the corpus was generated from.
    pub config: CorpusConfig,
    /// Vocabulary with document/collection frequencies observed.
    pub vocab: Vocabulary,
    /// Generated documents.
    pub docs: Vec<GeneratedDoc>,
    /// Ground-truth topics.
    pub topics: Vec<TopicGroundTruth>,
}

impl SyntheticCorpus {
    /// Generates a corpus from `config`. Fully deterministic in the config
    /// (including its seed).
    pub fn generate(config: CorpusConfig) -> Self {
        config.validate().expect("invalid corpus config");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- Vocabulary -----------------------------------------------------
        let vocab_size = config.vocab_size();
        let words = generate_words(vocab_size, 4);
        let mut vocab = Vocabulary::new();
        for w in &words {
            vocab.intern(w);
        }

        let topic_block = |t: usize| -> std::ops::Range<u32> {
            let start = (t * config.terms_per_topic) as u32;
            start..start + config.terms_per_topic as u32
        };
        let shared_start = (config.num_topics * config.terms_per_topic) as u32;
        let shared_range = shared_start..shared_start + config.shared_pool_terms as u32;
        let background_start = shared_range.end;
        let background_range = background_start..background_start + config.background_terms as u32;

        // --- Topic term distributions ---------------------------------------
        let mut topics = Vec::with_capacity(config.num_topics);
        let mut topic_samplers: Vec<(Vec<TermId>, Categorical)> =
            Vec::with_capacity(config.num_topics);
        for t in 0..config.num_topics {
            let core: Vec<TermId> = topic_block(t).collect();
            // Zipf weights over the core block, in a per-topic random order
            // so corpus-global term ranks do not align across topics.
            let mut order: Vec<usize> = (0..core.len()).collect();
            shuffle(&mut order, &mut rng);
            let core_mass = 1.0 - config.shared_weight;
            let mut term_weights: Vec<(TermId, f64)> = Vec::new();
            let zipf_norm: f64 = (1..=core.len())
                .map(|r| (r as f64).powf(-config.zipf_exponent))
                .sum();
            for (rank, &slot) in order.iter().enumerate() {
                let w = ((rank + 1) as f64).powf(-config.zipf_exponent) / zipf_norm * core_mass;
                term_weights.push((core[slot], w));
            }
            // Shared pool: each topic picks a random subset of the shared
            // pool with uniform weights (models polysemous terms).
            if config.shared_pool_terms > 0 && config.shared_weight > 0.0 {
                let pick = (config.shared_pool_terms / 6).max(1);
                let mut pool: Vec<TermId> = shared_range.clone().collect();
                shuffle(&mut pool, &mut rng);
                let per = config.shared_weight / pick as f64;
                for &term in pool.iter().take(pick) {
                    term_weights.push((term, per));
                }
            }
            term_weights.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
            let weights: Vec<f64> = term_weights.iter().map(|&(_, w)| w).collect();
            let terms: Vec<TermId> = term_weights.iter().map(|&(t, _)| t).collect();
            let sampler = Categorical::new(&weights).expect("topic weights positive");
            topic_samplers.push((terms, sampler));
            topics.push(TopicGroundTruth {
                id: t,
                name: format!("topic-{t:03}"),
                term_weights,
            });
        }

        // Background distribution (Zipfian over the background block).
        let background_terms: Vec<TermId> = background_range.collect();
        let background_weights: Vec<f64> = (1..=background_terms.len())
            .map(|r| (r as f64).powf(-config.zipf_exponent))
            .collect();
        let background_sampler =
            Categorical::new(&background_weights).expect("background weights positive");

        // --- Documents --------------------------------------------------------
        let topic_count_sampler =
            Categorical::new(&config.topic_count_weights).expect("topic count weights");
        let mut docs = Vec::with_capacity(config.num_docs);
        let stopword_pool: Vec<&str> = DEFAULT_STOPWORDS.to_vec();
        for id in 0..config.num_docs {
            let len = sample_log_normal(&mut rng, config.doc_len_mean.ln(), config.doc_len_sigma)
                .round() as usize;
            let len = len.clamp(config.min_doc_len, config.max_doc_len);

            // Topic set and mixture.
            let k = (topic_count_sampler.sample(&mut rng) + 1).min(config.num_topics);
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            while chosen.len() < k {
                let t = rng.gen_range(0..config.num_topics);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            let weights = sample_dirichlet(&mut rng, config.mixture_alpha, k);
            let mut mixture: Vec<(usize, f64)> = chosen
                .iter()
                .copied()
                .zip(weights.iter().copied())
                .collect();
            mixture.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let mixture_sampler = Categorical::new(&weights).expect("mixture weights");

            // Tokens.
            let mut tokens: Vec<TermId> = Vec::with_capacity(len);
            for _ in 0..len {
                if rng.gen::<f64>() < config.background_weight {
                    tokens.push(background_terms[background_sampler.sample(&mut rng)]);
                } else {
                    let z = chosen[mixture_sampler.sample(&mut rng)];
                    let (terms, sampler) = &topic_samplers[z];
                    tokens.push(terms[sampler.sample(&mut rng)]);
                }
            }
            vocab.observe_document(&tokens);

            // Surface text with stopword noise.
            let mut text = String::with_capacity(len * 8);
            for (i, &tok) in tokens.iter().enumerate() {
                if i > 0 {
                    text.push(' ');
                }
                text.push_str(vocab.term(tok));
                if rng.gen::<f64>() < config.stopword_noise {
                    text.push(' ');
                    text.push_str(stopword_pool[rng.gen_range(0..stopword_pool.len())]);
                }
            }

            docs.push(GeneratedDoc {
                id: id as u32,
                text,
                tokens,
                mixture,
            });
        }

        SyntheticCorpus {
            config,
            vocab,
            docs,
            topics,
        }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of ground-truth topics.
    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    /// Token-id sequences of all documents, in id order (what the index
    /// builder and the LDA trainer consume).
    pub fn token_docs(&self) -> Vec<&[TermId]> {
        self.docs.iter().map(|d| d.tokens.as_slice()).collect()
    }

    /// Verifies that the surface text of every document re-analyzes to the
    /// stored token ids under `analyzer`. Used by tests and as a sanity
    /// check when wiring a custom analyzer.
    pub fn verify_text_roundtrip(&self, analyzer: &tsearch_text::Analyzer) -> Result<(), String> {
        for doc in &self.docs {
            let reanalyzed = analyzer.analyze_frozen(&doc.text, &self.vocab);
            if reanalyzed != doc.tokens {
                return Err(format!(
                    "doc {} re-analyzes to {} tokens, expected {}",
                    doc.id,
                    reanalyzed.len(),
                    doc.tokens.len()
                ));
            }
        }
        Ok(())
    }
}

/// Fisher–Yates shuffle (kept local to avoid `rand`'s `SliceRandom` trait
/// import spreading through the crate).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Stopword list matching what the generator injects as noise; exposed for
/// tests that construct custom analyzers.
pub fn generator_stopwords() -> StopwordList {
    StopwordList::english()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsearch_text::Analyzer;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCorpus::generate(CorpusConfig::tiny());
        let b = SyntheticCorpus::generate(CorpusConfig::tiny());
        assert_eq!(a.docs.len(), b.docs.len());
        for (da, db) in a.docs.iter().zip(&b.docs) {
            assert_eq!(da.tokens, db.tokens);
            assert_eq!(da.text, db.text);
        }
    }

    #[test]
    fn corpus_has_expected_shape() {
        let cfg = CorpusConfig::tiny();
        let corpus = SyntheticCorpus::generate(cfg.clone());
        assert_eq!(corpus.num_docs(), cfg.num_docs);
        assert_eq!(corpus.num_topics(), cfg.num_topics);
        assert_eq!(corpus.vocab.len(), cfg.vocab_size());
        for doc in &corpus.docs {
            assert!(doc.tokens.len() >= cfg.min_doc_len);
            assert!(doc.tokens.len() <= cfg.max_doc_len);
            let total: f64 = doc.mixture.iter().map(|&(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "mixture sums to 1");
        }
    }

    #[test]
    fn text_reanalyzes_to_tokens() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
        let analyzer = Analyzer::new();
        corpus.verify_text_roundtrip(&analyzer).unwrap();
    }

    #[test]
    fn topic_weights_are_distributions() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
        for topic in &corpus.topics {
            let sum: f64 = topic.term_weights.iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-6, "topic {} sums to {sum}", topic.id);
            // Sorted descending.
            for pair in topic.term_weights.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
    }

    #[test]
    fn dominant_topic_terms_actually_occur() {
        let corpus = SyntheticCorpus::generate(CorpusConfig::tiny());
        // Documents dominated by topic t should contain top terms of t more
        // often than top terms of a different topic.
        let t0 = &corpus.topics[0];
        let top: Vec<TermId> = t0.top_terms(10).iter().map(|&(w, _)| w).collect();
        let docs0: Vec<&GeneratedDoc> = corpus
            .docs
            .iter()
            .filter(|d| d.dominant_topic() == 0 && d.topic_weight(0) > 0.7)
            .collect();
        if docs0.is_empty() {
            return; // tiny corpus may not have such docs; other tests cover
        }
        let hits: usize = docs0
            .iter()
            .map(|d| d.tokens.iter().filter(|t| top.contains(t)).count())
            .sum();
        assert!(hits > 0, "dominant-topic terms should appear");
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg2 = CorpusConfig::tiny();
        cfg2.seed = 999;
        let a = SyntheticCorpus::generate(CorpusConfig::tiny());
        let b = SyntheticCorpus::generate(cfg2);
        assert_ne!(a.docs[0].tokens, b.docs[0].tokens);
    }
}
